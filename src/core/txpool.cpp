#include "core/txpool.hpp"

#include <algorithm>

namespace forksim::core {

std::string to_string(PoolAddResult r) {
  switch (r) {
    case PoolAddResult::kAdded: return "added";
    case PoolAddResult::kAlreadyKnown: return "already known";
    case PoolAddResult::kInvalidSignature: return "invalid signature";
    case PoolAddResult::kWrongChainId: return "wrong chain id";
    case PoolAddResult::kNonceTooLow: return "nonce too low";
    case PoolAddResult::kUnderpriced: return "underpriced";
    case PoolAddResult::kPoolFull: return "pool full";
    case PoolAddResult::kReplacedExisting: return "replaced existing";
  }
  return "unknown";
}

namespace {

/// Metric-name slug per admission outcome (to_string() is for humans).
const char* result_slug(PoolAddResult r) {
  switch (r) {
    case PoolAddResult::kAdded: return "added";
    case PoolAddResult::kAlreadyKnown: return "already_known";
    case PoolAddResult::kInvalidSignature: return "invalid_signature";
    case PoolAddResult::kWrongChainId: return "wrong_chain_id";
    case PoolAddResult::kNonceTooLow: return "nonce_too_low";
    case PoolAddResult::kUnderpriced: return "underpriced";
    case PoolAddResult::kPoolFull: return "pool_full";
    case PoolAddResult::kReplacedExisting: return "replaced_existing";
  }
  return "unknown";
}

}  // namespace

void TxPool::attach_telemetry(obs::Registry& reg) {
  reg_ = &reg;
  for (std::size_t i = 0; i < tm_results_.size(); ++i) {
    const auto r = static_cast<PoolAddResult>(i);
    tm_results_[i] =
        &reg.counter(std::string("txpool.") + result_slug(r));
  }
  tm_size_ = &reg.gauge("txpool.size");
  if (evictions_ > 0) {
    tm_evicted_ = &reg.counter("txpool.evicted");
    tm_evicted_->inc(evictions_);
  }
}

PoolAddResult TxPool::add(const Transaction& tx, const State& state,
                          BlockNumber head_number) {
  const PoolAddResult r = add_impl(tx, state, head_number);
  obs::inc(tm_results_[static_cast<std::size_t>(r)]);
  obs::set(tm_size_, static_cast<double>(by_hash_.size()));
  return r;
}

PoolAddResult TxPool::add_impl(const Transaction& tx, const State& state,
                               BlockNumber head_number) {
  const Hash256 hash = tx.hash();
  if (by_hash_.contains(hash)) return PoolAddResult::kAlreadyKnown;

  const auto sender = tx.sender();
  if (!sender) return PoolAddResult::kInvalidSignature;

  // EIP-155 enforcement happens here, at the network edge: once the fork is
  // active, a transaction protected for another chain never enters the pool.
  if (!replay_valid_on(tx, config_.chain_id, config_.is_eip155(head_number)))
    return PoolAddResult::kWrongChainId;

  if (tx.gas_price < options_.min_gas_price)
    return PoolAddResult::kUnderpriced;

  const std::uint64_t account_nonce = state.nonce(*sender);
  if (tx.nonce < account_nonce) return PoolAddResult::kNonceTooLow;
  if (tx.nonce > account_nonce + options_.max_nonce_gap)
    return PoolAddResult::kPoolFull;  // unusable for a long time; refuse

  auto& sender_slots = by_sender_[*sender];
  auto slot = sender_slots.find(tx.nonce);
  if (slot != sender_slots.end()) {
    // same sender+nonce: replace only if strictly better priced
    const Entry& existing = by_hash_.at(slot->second);
    if (tx.gas_price <= existing.tx.gas_price)
      return PoolAddResult::kUnderpriced;
    by_hash_.erase(slot->second);
    slot->second = hash;
    by_hash_.emplace(hash, Entry{tx, *sender});
    return PoolAddResult::kReplacedExisting;
  }

  if (by_hash_.size() >= options_.capacity) {
    // Backpressure: a full pool evicts its strictly cheapest pending entry
    // to admit a better-paying newcomer. Equal or worse price is refused, so
    // floor-price spam can never displace honest transactions. The victim is
    // chosen by (lowest gas price, then smallest hash) — a deterministic
    // function of the pool's contents, independent of map iteration order.
    auto victim = by_hash_.end();
    for (auto it = by_hash_.begin(); it != by_hash_.end(); ++it) {
      if (it->second.tx.gas_price >= tx.gas_price) continue;
      if (victim == by_hash_.end() ||
          it->second.tx.gas_price < victim->second.tx.gas_price ||
          (it->second.tx.gas_price == victim->second.tx.gas_price &&
           it->first < victim->first))
        victim = it;
    }
    if (victim == by_hash_.end()) return PoolAddResult::kPoolFull;
    auto s_it = by_sender_.find(victim->second.sender);
    if (s_it != by_sender_.end()) {
      s_it->second.erase(victim->second.tx.nonce);
      if (s_it->second.empty()) by_sender_.erase(s_it);
    }
    by_hash_.erase(victim);
    ++evictions_;
    if (!tm_evicted_ && reg_) tm_evicted_ = &reg_->counter("txpool.evicted");
    obs::inc(tm_evicted_);
  }

  // re-lookup: eviction may have erased this sender's (now-empty) slot map,
  // invalidating `sender_slots`
  by_sender_[*sender].emplace(tx.nonce, hash);
  by_hash_.emplace(hash, Entry{tx, *sender});
  return PoolAddResult::kAdded;
}

std::vector<Transaction> TxPool::collect(std::size_t max_count,
                                         const State& state) const {
  // Gather the nonce-contiguous run of each sender, then repeatedly take the
  // best-priced *head* among all runs — a sender's later transactions only
  // become eligible once its earlier ones are selected, preserving nonce
  // order while maximizing fee income (the geth "price heap" strategy).
  struct Run {
    std::vector<const Transaction*> txs;  // contiguous nonces, ascending
    std::size_t next = 0;

    const Transaction* head() const {
      return next < txs.size() ? txs[next] : nullptr;
    }
  };
  std::vector<Run> runs;
  for (const auto& [sender, slots] : by_sender_) {
    Run run;
    std::uint64_t expected = state.nonce(sender);
    for (const auto& [nonce, hash] : slots) {
      if (nonce < expected) continue;
      if (nonce != expected) break;  // gap: later nonces unusable
      run.txs.push_back(&by_hash_.at(hash).tx);
      ++expected;
    }
    if (!run.txs.empty()) runs.push_back(std::move(run));
  }

  std::vector<Transaction> out;
  while (out.size() < max_count) {
    Run* best = nullptr;
    for (Run& run : runs) {
      const Transaction* head = run.head();
      if (head == nullptr) continue;
      if (best == nullptr || head->gas_price > best->head()->gas_price)
        best = &run;
    }
    if (best == nullptr) break;
    out.push_back(*best->head());
    ++best->next;
  }
  return out;
}

void TxPool::remove_included(const std::vector<Transaction>& included,
                             const State& new_state) {
  for (const Transaction& tx : included) by_hash_.erase(tx.hash());

  // drop any pending tx whose nonce is now stale
  for (auto sender_it = by_sender_.begin(); sender_it != by_sender_.end();) {
    auto& [sender, slots] = *sender_it;
    const std::uint64_t account_nonce = new_state.nonce(sender);
    for (auto it = slots.begin(); it != slots.end();) {
      const bool stale = it->first < account_nonce;
      const bool gone = !by_hash_.contains(it->second);
      if (stale && !gone) by_hash_.erase(it->second);
      it = (stale || gone) ? slots.erase(it) : ++it;
    }
    sender_it = slots.empty() ? by_sender_.erase(sender_it) : ++sender_it;
  }
}

std::vector<Hash256> TxPool::hashes() const {
  std::vector<Hash256> out;
  out.reserve(by_hash_.size());
  for (const auto& [hash, _] : by_hash_) out.push_back(hash);
  return out;
}

const Transaction* TxPool::by_hash(const Hash256& h) const {
  auto it = by_hash_.find(h);
  return it == by_hash_.end() ? nullptr : &it->second.tx;
}

}  // namespace forksim::core
