// Block headers and bodies.
//
// Headers carry everything the fork-choice and difficulty machinery needs:
// parent link, height, timestamp, difficulty, the three state commitments
// (state / transactions / receipts), the winning miner (coinbase — the field
// the paper's Figure 5 pool analysis reads), and gas accounting.
#pragma once

#include <optional>
#include <vector>

#include "core/transaction.hpp"
#include "core/types.hpp"
#include "rlp/rlp.hpp"

namespace forksim::core {

struct BlockHeader {
  Hash256 parent_hash;
  /// Commitment to the block's ommer ("uncle") headers — stale competitors
  /// from transient forks (paper §2.1) that get partial rewards.
  Hash256 ommers_hash;
  /// Reward recipient — a mining pool's address for pool-mined blocks.
  Address coinbase;
  Hash256 state_root;
  Hash256 transactions_root;
  Hash256 receipts_root;
  U256 difficulty;
  BlockNumber number = 0;
  Gas gas_limit = 0;
  Gas gas_used = 0;
  Timestamp timestamp = 0;
  /// Free-form miner field; the DAO fork's activation block famously carried
  /// "dao-hard-fork" here so clients could cheaply detect which side a peer
  /// is on. Our p2p handshake uses it the same way.
  Bytes extra_data;
  /// PoW seal stand-in (we model mining as a Poisson process; the nonce
  /// just keeps distinct blocks distinct).
  std::uint64_t nonce = 0;

  Hash256 hash() const;

  rlp::Item to_rlp() const;
  static std::optional<BlockHeader> from_rlp(const rlp::Item& item);
  Bytes encode() const;
  static std::optional<BlockHeader> decode(BytesView wire);

  friend bool operator==(const BlockHeader& a, const BlockHeader& b) {
    return a.encode() == b.encode();
  }
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;
  /// Included ommer headers (at most 2; see Blockchain::validate rules).
  std::vector<BlockHeader> ommers;

  Hash256 hash() const { return header.hash(); }

  /// Recompute the transactions trie root from the body.
  Hash256 compute_transactions_root() const;
  /// keccak(rlp(ommer headers)).
  Hash256 compute_ommers_hash() const;

  /// Body matches the header's commitments?
  bool transactions_root_matches() const {
    return compute_transactions_root() == header.transactions_root;
  }
  bool ommers_hash_matches() const {
    return compute_ommers_hash() == header.ommers_hash;
  }

  rlp::Item to_rlp() const;
  static std::optional<Block> from_rlp(const rlp::Item& item);
  Bytes encode() const;
  static std::optional<Block> decode(BytesView wire);

  friend bool operator==(const Block& a, const Block& b) {
    return a.encode() == b.encode();
  }
};

/// The marker ETH's fork-support clients placed in the DAO activation
/// block's extra_data.
Bytes dao_fork_extra_data();

/// keccak(rlp([])) — the ommers hash of a block with no ommers.
Hash256 empty_ommers_hash();

/// Construct the common genesis block both networks share.
Block make_genesis(Gas gas_limit, U256 difficulty, Timestamp timestamp = 0);

}  // namespace forksim::core
