// Chain configuration: protocol constants and the hard-fork activation
// schedule. A hard fork in Ethereum is exactly a change of ChainConfig at a
// block height — the DAO fork (block 1,920,000, July 20 2016) is modelled as
// two configs that agree up to the fork block and then diverge on
// `dao_fork_support`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/types.hpp"

namespace forksim::core {

struct ChainConfig {
  std::string name = "forksim";

  /// EIP-155 transaction chain id (used once eip155_block activates).
  std::uint64_t chain_id = 1;

  // ---- difficulty / block timing --------------------------------------
  /// Target inter-block time in seconds. Ethereum aims at ~14 s.
  Timestamp target_block_time = 14;
  /// Yellow Paper difficulty bound divisor (2048): each block may move
  /// difficulty by at most parent_difficulty / 2048 per retarget step unit.
  std::uint64_t difficulty_bound_divisor = 2048;
  /// Minimum difficulty floor (131072).
  std::uint64_t minimum_difficulty = 131072;
  /// Homestead retarget denominator: adjustment step is
  /// max(1 - (delta / 10), -99), i.e. one "notch" per 10 s of lateness.
  Timestamp homestead_duration_divisor = 10;
  /// Frontier rule threshold: faster than 13 s -> difficulty up, else down.
  Timestamp frontier_duration_limit = 13;
  /// Cap (in bound-divisor notches) on how far a single block may drop
  /// difficulty under Homestead rules (-99 in the Yellow Paper). This bound
  /// is what made ETC's post-fork difficulty adjustment take ~2 days
  /// (paper §3.2).
  std::int64_t max_adjustment_down = 99;
  /// Enable the "difficulty bomb" exponential term (disabled by default in
  /// simulations; it is irrelevant to the fork window studied).
  bool difficulty_bomb = false;

  // ---- rewards / gas ---------------------------------------------------
  /// Static block reward: 5 ether during the study period.
  std::uint64_t block_reward_ether = 5;
  Gas min_gas_limit = 5000;
  /// Gas limit may move by parent/1024 per block (EIP-not-needed here but
  /// kept for header validation realism).
  std::uint64_t gas_limit_bound_divisor = 1024;
  Gas genesis_gas_limit = 4'712'388;  // ~4.7M, mainnet at the fork

  // ---- fork schedule ---------------------------------------------------
  /// Homestead difficulty rules from this height (0 = from genesis).
  BlockNumber homestead_block = 0;
  /// DAO hard fork height; nullopt = chain never schedules the DAO fork.
  std::optional<BlockNumber> dao_fork_block;
  /// True for the chain that adopts the DAO state edit (ETH); false for the
  /// chain that rejects it (ETC).
  bool dao_fork_support = false;
  /// EIP-150 gas repricing height (the Nov 22 2016 ETH fork; the paper's
  /// "other Ethereum forks" section).
  std::optional<BlockNumber> eip150_block;
  /// EIP-155 replay protection height (ETC adopted it Jan 13 2017).
  std::optional<BlockNumber> eip155_block;

  bool is_homestead(BlockNumber n) const noexcept {
    return n >= homestead_block;
  }
  bool is_dao_fork(BlockNumber n) const noexcept {
    return dao_fork_block && n >= *dao_fork_block;
  }
  bool is_eip150(BlockNumber n) const noexcept {
    return eip150_block && n >= *eip150_block;
  }
  bool is_eip155(BlockNumber n) const noexcept {
    return eip155_block && n >= *eip155_block;
  }

  Wei block_reward() const { return ether(block_reward_ether); }

  /// Configuration of the pre-fork network (both sides agree).
  static ChainConfig mainnet_pre_fork();
  /// The ETH side: schedules and supports the DAO fork at `fork_block`.
  static ChainConfig eth(BlockNumber fork_block);
  /// The ETC side: same fork block scheduled but not supported, EIP-155
  /// replay protection activating later at `eip155_block` (if any).
  static ChainConfig etc(BlockNumber fork_block,
                         std::optional<BlockNumber> eip155_block);

  /// Two configs are "wire compatible" (nodes will peer and exchange blocks)
  /// iff they agree on DAO fork support or neither has reached the fork yet.
  /// This is the partition predicate of the paper's §1 footnote 1.
  static bool compatible_at(const ChainConfig& a, const ChainConfig& b,
                            BlockNumber height) noexcept;
};

}  // namespace forksim::core
