// World state: accounts, balances, nonces, contract code and storage, with
// snapshot/revert (for EVM call frames and failed transactions) and the
// Merkle-Patricia state root committed to in block headers.
//
// The engine is journaled: every mutation appends an undo entry, so
// snapshot() is an O(1) journal mark and revert(mark) unwinds entries in
// reverse — nested EVM call frames cost nothing per frame instead of a
// whole-map copy. State roots commit incrementally: accounts dirtied since
// the last root() are patched into a persistent cached trie (whose nodes
// memoize their hashes), falling back to a full rebuild only on first use
// or after a copy.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/types.hpp"
#include "crypto/keccak.hpp"
#include "trie/trie.hpp"

namespace forksim::obs {
class Registry;
}

namespace forksim::core {

/// keccak256 of empty code — the code_hash of plain accounts.
Hash256 empty_code_hash();

/// Process-wide state-engine tallies (the simulator is single-threaded),
/// mirroring the trie::TrieCounters pattern: unconditional increments, no
/// Rng draws, cheap enough to leave always on.
struct EngineCounters {
  std::uint64_t snapshots = 0;        // journal marks taken
  std::uint64_t reverts = 0;          // revert(mark) calls
  std::uint64_t journal_entries = 0;  // undo entries recorded
  std::uint64_t journal_entries_unwound = 0;
  std::uint64_t journal_max_depth = 0;      // deepest journal seen
  std::uint64_t root_commits_full = 0;      // trie-cache misses (rebuilds)
  std::uint64_t root_commits_incremental = 0;  // trie-cache hits
  std::uint64_t header_cache_hits = 0;   // core::HeaderHashCache
  std::uint64_t header_cache_misses = 0;
};

const EngineCounters& engine_counters() noexcept;
void reset_engine_counters() noexcept;
/// Mutable access for the engine's own instrumentation sites (state.cpp,
/// chain.cpp). Not meant for user code.
EngineCounters& engine_counters_mut() noexcept;

/// Register a snapshot-time collector on `reg` that mirrors the engine
/// counters (as deltas from the attach point) into state.* / chain.* names.
/// Deliberately NOT wired into ForkScenario::attach_telemetry: the golden
/// fingerprints predate the journaled engine and must stay bit-identical.
void attach_engine_telemetry(obs::Registry& reg);

struct Account {
  std::uint64_t nonce = 0;
  Wei balance;
  Bytes code;
  std::unordered_map<U256, U256, U256Hasher> storage;

  bool is_contract() const noexcept { return !code.empty(); }
  Hash256 code_hash() const {
    return code.empty() ? empty_code_hash() : keccak256(code);
  }
  bool is_empty() const noexcept {
    return nonce == 0 && balance.is_zero() && code.empty() && storage.empty();
  }

  bool operator==(const Account& other) const {
    return nonce == other.nonce && balance == other.balance &&
           code == other.code && storage == other.storage;
  }
};

class State {
 public:
  State() = default;
  /// Copies the account map only. The undo journal and the cached root trie
  /// do not transfer: marks taken on the source cannot revert the copy, and
  /// the copy's first root() falls back to a full rebuild.
  State(const State& other);
  State& operator=(const State& other);
  State(State&&) noexcept = default;
  State& operator=(State&&) noexcept = default;

  bool exists(const Address& addr) const {
    return accounts_.contains(addr);
  }

  /// Read-only view; nullptr if absent.
  const Account* account(const Address& addr) const;

  /// Mutable accessor, creating (and journaling) the account if needed.
  /// The returned reference allows direct field edits that bypass the undo
  /// journal — inside snapshot scopes use the typed mutators instead.
  Account& touch(const Address& addr);

  Wei balance(const Address& addr) const;
  void add_balance(const Address& addr, const Wei& amount);
  /// Returns false (and leaves state unchanged) on insufficient funds.
  [[nodiscard]] bool sub_balance(const Address& addr, const Wei& amount);

  std::uint64_t nonce(const Address& addr) const;
  void set_nonce(const Address& addr, std::uint64_t nonce);
  void increment_nonce(const Address& addr);

  const Bytes& code(const Address& addr) const;
  void set_code(const Address& addr, Bytes code);

  U256 storage_at(const Address& addr, const U256& key) const;
  void set_storage(const Address& addr, const U256& key, const U256& value);

  /// Remove an account entirely (SELFDESTRUCT). Journaled: a revert past
  /// this point resurrects the account with all its storage and code.
  void destroy(const Address& addr);

  std::size_t account_count() const noexcept { return accounts_.size(); }

  /// All addresses (analysis/debug; unordered).
  std::vector<Address> addresses() const;

  // ---- snapshot / revert ------------------------------------------------
  /// A snapshot is an O(1) mark into the undo journal (legacy name kept for
  /// the call sites; the whole-map copy type it used to alias is gone).
  using Snapshot = std::size_t;
  Snapshot snapshot() const;
  /// Unwind every mutation journaled after `mark`, newest first. Marks
  /// nest: reverting to an outer mark discards the inner ones.
  void revert(Snapshot mark);

  /// Entries currently in the undo journal (telemetry/debug).
  std::size_t journal_depth() const noexcept { return journal_.size(); }
  /// Drop all undo history (marks become invalid). Useful for long-lived
  /// states at a commit boundary no revert can cross.
  void clear_journal();

  // ---- commitments --------------------------------------------------------
  /// Merkle-Patricia state root: trie of keccak(address) ->
  /// rlp([nonce, balance, storage_root, code_hash]). Incremental: only
  /// accounts dirtied since the previous root() are re-committed into the
  /// cached trie; the first call (or the first after a copy) rebuilds.
  Hash256 root() const;

  /// Discard the cached root trie; the next root() rebuilds from scratch
  /// (benchmarks and tests of the incremental engine).
  void invalidate_root_cache() const;

  /// Storage root of one account (empty-trie root when no storage).
  static Hash256 storage_root(const Account& account);

 private:
  struct JournalEntry {
    enum class Kind : std::uint8_t {
      kCreated,    // undo: erase the account
      kBalance,    // undo: restore prev_word as balance
      kNonce,      // undo: restore prev_nonce
      kCode,       // undo: restore prev_code
      kStorage,    // undo: restore prev_word at key (zero = erase slot)
      kDestroyed,  // undo: reinsert *prev_account
    };
    Kind kind;
    Address addr;
    U256 key;                                // kStorage
    U256 prev_word;                          // kBalance / kStorage
    std::uint64_t prev_nonce = 0;            // kNonce
    Bytes prev_code;                         // kCode
    std::unique_ptr<Account> prev_account;   // kDestroyed
  };

  JournalEntry& journal(JournalEntry::Kind kind, const Address& addr);
  void undo(JournalEntry& entry);
  /// Record that `addr`'s trie leaf may differ from the committed root.
  void mark_dirty(const Address& addr) const;

  std::unordered_map<Address, Account, AddressHasher> accounts_;
  std::vector<JournalEntry> journal_;

  // Cached account trie for incremental root commits. Mutable: root() is
  // logically const (callers hold shared_ptr<const State>), the cache is
  // pure memoization. `root_cache_valid_` false => full rebuild next root().
  mutable trie::Trie root_trie_;
  mutable bool root_cache_valid_ = false;
  mutable std::unordered_set<Address, AddressHasher> dirty_;
};

/// The DAO irregular state change: move the full balance of every account in
/// `dao_accounts` to `refund`. ETH applied exactly this edit at block
/// 1,920,000; ETC refused it — the paper's partition.
void apply_dao_refund(State& state, const std::vector<Address>& dao_accounts,
                      const Address& refund);

}  // namespace forksim::core
