// World state: accounts, balances, nonces, contract code and storage, with
// snapshot/revert (for EVM call frames and failed transactions) and the
// Merkle-Patricia state root committed to in block headers.
//
// Snapshots are whole-map copies. Simulated states hold at most a few
// thousand small accounts, so copying is cheap and keeps revert semantics
// trivially correct; a journal would only pay off at mainnet scale.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "crypto/keccak.hpp"

namespace forksim::core {

/// keccak256 of empty code — the code_hash of plain accounts.
Hash256 empty_code_hash();

struct Account {
  std::uint64_t nonce = 0;
  Wei balance;
  Bytes code;
  std::unordered_map<U256, U256, U256Hasher> storage;

  bool is_contract() const noexcept { return !code.empty(); }
  Hash256 code_hash() const {
    return code.empty() ? empty_code_hash() : keccak256(code);
  }
  bool is_empty() const noexcept {
    return nonce == 0 && balance.is_zero() && code.empty() && storage.empty();
  }
};

class State {
 public:
  bool exists(const Address& addr) const {
    return accounts_.contains(addr);
  }

  /// Read-only view; nullptr if absent.
  const Account* account(const Address& addr) const;

  /// Mutable accessor, creating the account if needed.
  Account& touch(const Address& addr) { return accounts_[addr]; }

  Wei balance(const Address& addr) const;
  void add_balance(const Address& addr, const Wei& amount);
  /// Returns false (and leaves state unchanged) on insufficient funds.
  [[nodiscard]] bool sub_balance(const Address& addr, const Wei& amount);

  std::uint64_t nonce(const Address& addr) const;
  void set_nonce(const Address& addr, std::uint64_t nonce);
  void increment_nonce(const Address& addr);

  const Bytes& code(const Address& addr) const;
  void set_code(const Address& addr, Bytes code);

  U256 storage_at(const Address& addr, const U256& key) const;
  void set_storage(const Address& addr, const U256& key, const U256& value);

  /// Remove an account entirely (SELFDESTRUCT).
  void destroy(const Address& addr) { accounts_.erase(addr); }

  std::size_t account_count() const noexcept { return accounts_.size(); }

  /// All addresses (analysis/debug; unordered).
  std::vector<Address> addresses() const;

  // ---- snapshot / revert ------------------------------------------------
  using Snapshot = std::unordered_map<Address, Account, AddressHasher>;
  Snapshot snapshot() const { return accounts_; }
  void revert(Snapshot snap) { accounts_ = std::move(snap); }

  // ---- commitments --------------------------------------------------------
  /// Merkle-Patricia state root: trie of keccak(address) ->
  /// rlp([nonce, balance, storage_root, code_hash]).
  Hash256 root() const;

  /// Storage root of one account (empty-trie root when no storage).
  static Hash256 storage_root(const Account& account);

 private:
  std::unordered_map<Address, Account, AddressHasher> accounts_;
};

/// The DAO irregular state change: move the full balance of every account in
/// `dao_accounts` to `refund`. ETH applied exactly this edit at block
/// 1,920,000; ETC refused it — the paper's partition.
void apply_dao_refund(State& state, const std::vector<Address>& dao_accounts,
                      const Address& refund);

}  // namespace forksim::core
