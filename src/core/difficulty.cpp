#include "core/difficulty.hpp"

#include <algorithm>
#include <cmath>

namespace forksim::core {

namespace {

U256 apply_notches(const ChainConfig& config, const U256& parent_difficulty,
                   std::int64_t notches) {
  const U256 step = parent_difficulty / U256(config.difficulty_bound_divisor);
  U256 diff = parent_difficulty;
  if (notches >= 0) {
    diff = diff + step * U256(static_cast<std::uint64_t>(notches));
  } else {
    const U256 decrease = step * U256(static_cast<std::uint64_t>(-notches));
    diff = decrease >= diff ? U256(config.minimum_difficulty)
                            : diff - decrease;
  }
  return std::max(diff, U256(config.minimum_difficulty));
}

U256 bomb_term(const ChainConfig& config, BlockNumber number) {
  if (!config.difficulty_bomb) return U256(0);
  const std::uint64_t period = number / 100000;
  if (period < 2) return U256(0);
  return U256(1) << static_cast<unsigned>(std::min<std::uint64_t>(period - 2, 255));
}

}  // namespace

std::int64_t homestead_adjustment(const ChainConfig& config,
                                  Timestamp timestamp,
                                  Timestamp parent_timestamp) noexcept {
  const auto delta = static_cast<std::int64_t>(timestamp - parent_timestamp);
  const auto divisor =
      static_cast<std::int64_t>(config.homestead_duration_divisor);
  return std::max<std::int64_t>(1 - delta / divisor,
                                -config.max_adjustment_down);
}

U256 next_difficulty(const ChainConfig& config, BlockNumber number,
                     Timestamp timestamp, const U256& parent_difficulty,
                     Timestamp parent_timestamp) {
  std::int64_t notches;
  if (config.is_homestead(number)) {
    notches = homestead_adjustment(config, timestamp, parent_timestamp);
  } else {
    notches =
        (timestamp - parent_timestamp) < config.frontier_duration_limit ? 1
                                                                        : -1;
  }
  U256 diff = apply_notches(config, parent_difficulty, notches);
  return diff + bomb_term(config, number);
}

U256 retarget(RetargetRule rule, const ChainConfig& config, BlockNumber number,
              Timestamp timestamp, const U256& parent_difficulty,
              Timestamp parent_timestamp, double window_actual_seconds,
              std::uint64_t window_blocks) {
  switch (rule) {
    case RetargetRule::kHomestead:
      return next_difficulty(config, number, timestamp, parent_difficulty,
                             parent_timestamp);

    case RetargetRule::kUncapped: {
      // uncapped exponential controller: respond to the *relative* error of
      // each observed interval with gain k, no floor on the downward step.
      // Unbiased at equilibrium (E[1 - delta/target] = 0 when E[delta] hits
      // the target) and recovers from a 10x hashpower loss within a handful
      // of blocks — the comparator for ablation A1.
      const double delta =
          std::max<double>(1.0, static_cast<double>(timestamp - parent_timestamp));
      const double target = static_cast<double>(config.target_block_time);
      constexpr double kGain = 0.1;
      double factor = std::exp(kGain * (1.0 - delta / target));
      factor = std::clamp(factor, 1.0 / 8.0, 8.0);
      const double scaled = parent_difficulty.to_double() * factor;
      U256 diff = scaled <= 1.0 ? U256(1)
                                : U256(static_cast<std::uint64_t>(
                                      std::min(scaled, 1.8e19)));
      // preserve magnitudes beyond u64 by falling back to notch math
      if (parent_difficulty > U256(~0ull))
        diff = next_difficulty(config, number, timestamp, parent_difficulty,
                               parent_timestamp);
      return std::max(diff, U256(config.minimum_difficulty));
    }

    case RetargetRule::kEpochAverage: {
      if (window_blocks == 0 || window_actual_seconds <= 0.0)
        return parent_difficulty;
      const double target_seconds =
          static_cast<double>(config.target_block_time) *
          static_cast<double>(window_blocks);
      double factor = target_seconds / window_actual_seconds;
      factor = std::clamp(factor, 0.25, 4.0);  // Bitcoin's clamp
      const double scaled = parent_difficulty.to_double() * factor;
      U256 diff = scaled <= 1.0 ? U256(1)
                                : U256(static_cast<std::uint64_t>(
                                      std::min(scaled, 1.8e19)));
      return std::max(diff, U256(config.minimum_difficulty));
    }
  }
  return parent_difficulty;
}

}  // namespace forksim::core
