// A small LRU memo from header RLP encodings to their keccak hashes.
//
// Fork-choice re-evaluation during partitions hashes the same headers over
// and over: every import with ommers re-hashes the ancestry window's ommer
// headers, and every produce_block() re-hashes the stale-block candidates.
// Keying on the exact RLP encoding keeps the cache trivially sound — two
// headers hash equal iff their encodings are byte-equal.
#pragma once

#include <cstddef>
#include <list>
#include <string_view>
#include <unordered_map>

#include "core/block.hpp"

namespace forksim::core {

class HeaderHashCache {
 public:
  explicit HeaderHashCache(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// keccak256 of the header's RLP encoding, memoized with LRU eviction.
  Hash256 hash_of(const BlockHeader& header);

  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    Bytes encoding;
    Hash256 hash;
  };

  struct BytesHasher {
    std::size_t operator()(const Bytes& b) const noexcept {
      return std::hash<std::string_view>{}(std::string_view(
          reinterpret_cast<const char*>(b.data()), b.size()));
    }
  };

  std::size_t capacity_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<Bytes, std::list<Slot>::iterator, BytesHasher> index_;
};

}  // namespace forksim::core
