#include "core/transaction.hpp"

#include "crypto/keccak.hpp"

namespace forksim::core {

namespace {

rlp::Item to_field(const std::optional<Address>& to) {
  if (!to) return rlp::Item::str(BytesView{});
  return rlp::Item::str(to->view());
}

std::vector<rlp::Item> payload_fields(const Transaction& tx) {
  return {
      rlp::Item::u64(tx.nonce),        rlp::Item::u256(tx.gas_price),
      rlp::Item::u64(tx.gas_limit),    to_field(tx.to),
      rlp::Item::u256(tx.value),       rlp::Item(tx.data),
  };
}

}  // namespace

Hash256 Transaction::signing_hash() const {
  std::vector<rlp::Item> fields = payload_fields(*this);
  if (chain_id) {
    // EIP-155 trailer: (chain_id, 0, 0)
    fields.push_back(rlp::Item::u64(*chain_id));
    fields.push_back(rlp::Item::u64(0));
    fields.push_back(rlp::Item::u64(0));
  }
  return keccak256(rlp::encode(rlp::Item::list(std::move(fields))));
}

rlp::Item Transaction::to_rlp() const {
  std::vector<rlp::Item> fields = payload_fields(*this);
  fields.push_back(rlp::Item::u64(chain_id.value_or(0)));
  fields.push_back(rlp::Item::str(signature.pubkey.view()));
  fields.push_back(rlp::Item::str(signature.tag.view()));
  return rlp::Item::list(std::move(fields));
}

Bytes Transaction::encode() const { return rlp::encode(to_rlp()); }

Hash256 Transaction::hash() const { return keccak256(encode()); }

std::optional<Transaction> Transaction::from_rlp(const rlp::Item& item) {
  if (!item.is_list() || item.items().size() != 9) return std::nullopt;
  const auto& f = item.items();

  Transaction tx;
  auto nonce = f[0].as_u64();
  auto gas_price = f[1].as_u256();
  auto gas_limit = f[2].as_u64();
  auto value = f[4].as_u256();
  auto chain = f[6].as_u64();
  if (!nonce || !gas_price || !gas_limit || !value || !chain)
    return std::nullopt;
  tx.nonce = *nonce;
  tx.gas_price = *gas_price;
  tx.gas_limit = *gas_limit;
  tx.value = *value;

  if (!f[3].is_bytes() || !f[5].is_bytes() || !f[7].is_bytes() ||
      !f[8].is_bytes())
    return std::nullopt;
  const Bytes& to_bytes = f[3].bytes();
  if (to_bytes.empty()) {
    tx.to = std::nullopt;
  } else {
    auto addr = Address::from_bytes(to_bytes);
    if (!addr) return std::nullopt;
    tx.to = *addr;
  }
  tx.data = f[5].bytes();
  tx.chain_id = *chain == 0 ? std::nullopt : std::make_optional(*chain);

  auto pubkey = Hash256::from_bytes(f[7].bytes());
  auto tag = Hash256::from_bytes(f[8].bytes());
  if (!pubkey || !tag) return std::nullopt;
  tx.signature = Signature{*pubkey, *tag};
  return tx;
}

std::optional<Transaction> Transaction::decode(BytesView wire) {
  auto decoded = rlp::decode(wire);
  if (!decoded.ok()) return std::nullopt;
  return from_rlp(*decoded.item);
}

std::optional<Address> Transaction::sender() const {
  return recover(signing_hash(), signature);
}

Gas Transaction::intrinsic_gas(bool homestead) const noexcept {
  Gas gas = 21000;
  for (std::uint8_t b : data) gas += (b == 0) ? 4 : 68;
  if (is_contract_creation() && homestead) gas += 32000;
  return gas;
}

Transaction make_transaction(const PrivateKey& sender_key, std::uint64_t nonce,
                             std::optional<Address> to, Wei value,
                             std::optional<std::uint64_t> chain_id,
                             Wei gas_price, Gas gas_limit, Bytes data) {
  Transaction tx;
  tx.nonce = nonce;
  tx.gas_price = gas_price;
  tx.gas_limit = gas_limit;
  tx.to = to;
  tx.value = value;
  tx.data = std::move(data);
  tx.chain_id = chain_id;
  sign_transaction(tx, sender_key);
  return tx;
}

void sign_transaction(Transaction& tx, const PrivateKey& sender_key) {
  tx.signature = sign(sender_key, tx.signing_hash());
}

bool replay_valid_on(const Transaction& tx, std::uint64_t chain_id,
                     bool eip155_active) noexcept {
  if (!tx.is_replay_protected()) return true;  // legacy txs always accepted
  if (!eip155_active) return false;  // protected txs need the fork active
  return *tx.chain_id == chain_id;
}

}  // namespace forksim::core
