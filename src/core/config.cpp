#include "core/config.hpp"

namespace forksim::core {

ChainConfig ChainConfig::mainnet_pre_fork() {
  ChainConfig c;
  c.name = "pre-fork";
  c.chain_id = 1;
  c.homestead_block = 0;
  return c;
}

ChainConfig ChainConfig::eth(BlockNumber fork_block) {
  ChainConfig c = mainnet_pre_fork();
  c.name = "ETH";
  c.chain_id = to_u64(ChainId::kEth);
  c.dao_fork_block = fork_block;
  c.dao_fork_support = true;
  return c;
}

ChainConfig ChainConfig::etc(BlockNumber fork_block,
                             std::optional<BlockNumber> eip155_block) {
  ChainConfig c = mainnet_pre_fork();
  c.name = "ETC";
  c.chain_id = to_u64(ChainId::kEtc);
  c.dao_fork_block = fork_block;
  c.dao_fork_support = false;
  c.eip155_block = eip155_block;
  return c;
}

bool ChainConfig::compatible_at(const ChainConfig& a, const ChainConfig& b,
                                BlockNumber height) noexcept {
  const bool a_forked = a.is_dao_fork(height);
  const bool b_forked = b.is_dao_fork(height);
  if (!a_forked && !b_forked) return true;  // fork not reached yet
  if (a_forked != b_forked) return true;    // one side lags; still syncs
  return a.dao_fork_support == b.dao_fork_support;
}

}  // namespace forksim::core
