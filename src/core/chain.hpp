// The blockchain: block store, header/body validation, transaction
// execution on import, total-difficulty fork choice with reorg support, and
// block production.
//
// Fork choice follows Ethereum's 2016 rule: the canonical head is the block
// with the greatest total difficulty (sum of difficulties from genesis).
// Transient forks (paper §2.1) resolve automatically when one branch's TD
// pulls ahead; the DAO partition does not, because each side *rejects the
// other's fork block* — ETH requires the DAO refund state change, ETC
// forbids it.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "core/block.hpp"
#include "core/config.hpp"
#include "core/difficulty.hpp"
#include "core/hashcache.hpp"
#include "core/receipt.hpp"
#include "obs/metrics.hpp"

namespace forksim::core {

enum class ImportResult {
  kImported,         // valid, appended (and possibly the new head)
  kAlreadyKnown,
  kUnknownParent,    // orphan; caller may fetch ancestors and retry
  kInvalidHeader,    // structural/consensus failure
  kInvalidBody,      // tx root mismatch or tx execution mismatch
  kInvalidOmmers,    // ommer rules violated (count, kinship, reuse)
  kWrongFork,        // DAO fork-block rule violated (the partition rule)
  /// A validation-rule overlay overturned an otherwise-valid verdict: the
  /// block is consensus-valid to the rest of the network but this
  /// implementation's (buggy) rules refuse it. Distinct from
  /// kInvalidHeader so callers can treat validity *disagreement* — an
  /// honest peer on the other side of a consensus bug — differently from
  /// forged garbage (it must never feed the ban machinery).
  kDisputed,
};

std::string to_string(ImportResult r);

/// Pluggable validation overlay — the consensus-bug fault injector,
/// analogous to db::SimDisk for storage faults. Installed on a chain via
/// Blockchain::set_validation_rules, it reviews every header verdict the
/// built-in rules produce and may overturn it; a quirk flipping an
/// otherwise-valid rule returns kDisputed inside its bug window. With no
/// overlay installed (the default) import behavior is byte-identical to
/// builds without this hook.
class ValidationRuleSet {
 public:
  virtual ~ValidationRuleSet() = default;
  /// `hash` is the header's hash (memoized by the chain), `builtin` the
  /// built-in rules' verdict. Return the verdict the chain should use.
  virtual ImportResult review_header(const BlockHeader& header,
                                     const Hash256& hash,
                                     ImportResult builtin) const = 0;
};

struct ImportOutcome {
  ImportResult result;
  bool became_head = false;
  /// Number of blocks rolled back from the old canonical chain (0 for a
  /// simple head extension).
  std::size_t reorg_depth = 0;
};

/// Genesis allocation: address -> initial balance.
using GenesisAlloc = std::vector<std::pair<Address, Wei>>;

class Blockchain {
 public:
  /// `executor` must outlive the chain.
  Blockchain(ChainConfig config, Executor& executor,
             const GenesisAlloc& alloc = {},
             Gas genesis_gas_limit = 0 /* 0 = config default */,
             U256 genesis_difficulty = U256(131072));

  const ChainConfig& config() const noexcept { return config_; }

  // ---- queries ----------------------------------------------------------
  const Block& genesis() const { return *block_by_number(0); }
  const Block& head() const;
  BlockNumber height() const noexcept;
  U256 head_total_difficulty() const;
  U256 total_difficulty_of(const Hash256& hash) const;

  bool contains(const Hash256& hash) const;
  const Block* block_by_hash(const Hash256& hash) const;
  /// Canonical-chain lookup.
  const Block* block_by_number(BlockNumber n) const;
  /// Post-execution state of the canonical head.
  const State& head_state() const;
  /// Receipts of a block (empty if unknown).
  const std::vector<Receipt>* receipts_of(const Hash256& hash) const;

  /// The canonical hash at height n (nullopt above head).
  std::optional<Hash256> canonical_hash(BlockNumber n) const;
  /// True if `hash` is on the canonical chain.
  bool is_canonical(const Hash256& hash) const;

  // ---- mutation -----------------------------------------------------------
  ImportOutcome import(const Block& block);

  /// Install (or clear, with nullptr) a validation-rule overlay. Non-owning:
  /// `rules` must outlive the chain or be cleared first. The overlay is
  /// consulted on every header the built-in rules judge during import; a
  /// null overlay leaves import behavior byte-identical to builds without
  /// the hook. Survives reset_to_genesis (the implementation's rules are
  /// code, not process state).
  void set_validation_rules(const ValidationRuleSet* rules) noexcept {
    rules_ = rules;
  }
  const ValidationRuleSet* validation_rules() const noexcept { return rules_; }

  /// Forget every block except genesis — the cold-restart primitive: a
  /// crashed process lost its in-memory chain, and recovery re-imports
  /// whatever the durable store's checksums vouch for. Config, executor,
  /// genesis state, and the DAO account list all survive (they are code
  /// and configuration, not process state).
  void reset_to_genesis();

  /// Assemble, execute and seal a block on top of the current head.
  /// Transactions that fail validation are skipped (as a miner would skip
  /// them); eligible ommers known to this chain are included automatically
  /// (up to kMaxOmmers). The DAO activation block automatically carries the
  /// fork extra_data marker (and refund edit) when the config supports it.
  Block produce_block(const Address& coinbase, Timestamp timestamp,
                      const std::vector<Transaction>& candidate_txs,
                      std::uint64_t pow_nonce = 0);

  static constexpr std::size_t kMaxOmmers = 2;
  /// How many generations back an ommer's parent may sit (Yellow Paper: 6).
  static constexpr BlockNumber kOmmerWindow = 6;

  /// Stale-but-valid headers eligible as ommers of a child of the current
  /// head: known non-canonical blocks within the window whose headers were
  /// not already included as ommers.
  std::vector<BlockHeader> collect_ommers() const;

  /// Total blocks known that are not on the canonical chain (transient fork
  /// telemetry).
  std::size_t stale_block_count() const;

  /// Expected difficulty for a child of the current head at `timestamp`.
  U256 next_block_difficulty(Timestamp timestamp) const;

  /// Accounts the DAO refund drains at the fork block (settable before the
  /// fork activates; both sides must agree on the list — only `support`
  /// decides whether the edit is applied).
  void set_dao_accounts(std::vector<Address> accounts, Address refund);

  /// Drop stored per-block states below `height`, keeping every
  /// `checkpoint_interval`-th block (reorgs deeper than the kept window
  /// become impossible; callers trading memory for that risk say so here).
  void prune_states_below(BlockNumber height,
                          BlockNumber checkpoint_interval = 1024);

  std::size_t block_count() const noexcept { return records_.size(); }

  /// Register chain.import.<result> counters, a chain.reorg_depth
  /// histogram, and a chain.blocks_produced counter in `reg`. Shared
  /// registries aggregate across chains (all nodes in a sim).
  void attach_telemetry(obs::Registry& reg);

 private:
  ImportOutcome import_impl(const Block& block);

  struct Record {
    Block block;
    U256 total_difficulty;
    std::shared_ptr<const State> post_state;  // null if pruned
    std::vector<Receipt> receipts;
  };

  const Record* record(const Hash256& hash) const;
  /// Header hash through the LRU memo — every hash the chain computes for
  /// fork-choice, ommer validation, and import goes through here.
  Hash256 header_hash(const BlockHeader& header) const {
    return header_hashes_.hash_of(header);
  }
  ImportResult validate_header(const BlockHeader& header,
                               const Record& parent) const;
  ImportResult validate_ommers(const Block& block) const;
  /// Executes the block body on top of `pre`; returns nullopt + error on any
  /// mismatch with the header commitments.
  std::optional<std::pair<State, std::vector<Receipt>>> execute_body(
      const Block& block, const State& pre) const;
  void update_canonical(const Hash256& new_head, ImportOutcome& outcome);

  ChainConfig config_;
  Executor& executor_;
  const ValidationRuleSet* rules_ = nullptr;  // non-owning overlay (nullable)
  std::unordered_map<Hash256, Record, Hash256Hasher> records_;
  std::map<BlockNumber, Hash256> canonical_;
  Hash256 head_hash_;
  std::vector<Address> dao_accounts_;
  Address dao_refund_;
  /// Memoized header hashes (mutable: hashing is pure; the cache is not
  /// observable state). Sized for the ancestry windows partitions re-walk.
  mutable HeaderHashCache header_hashes_{4096};
  /// Eager counters for the seven pre-overlay outcomes; kDisputed is
  /// lazily registered on the first dispute (see tm_disputed_) so the
  /// metric set — and golden registry fingerprints — of overlay-free runs
  /// stays unchanged.
  std::array<obs::Counter*, 7> tm_results_{};
  obs::Counter* tm_disputed_ = nullptr;  // lazily registered
  obs::Registry* tm_reg_ = nullptr;
  obs::Histogram* tm_reorg_ = nullptr;
  obs::Counter* tm_produced_ = nullptr;
};

}  // namespace forksim::core
