#include "core/receipt.hpp"

#include "trie/trie.hpp"

namespace forksim::core {

rlp::Item Log::to_rlp() const {
  std::vector<rlp::Item> topic_items;
  topic_items.reserve(topics.size());
  for (const auto& t : topics) topic_items.push_back(rlp::Item::u256(t));
  return rlp::Item::list({rlp::Item::str(address.view()),
                          rlp::Item::list(std::move(topic_items)),
                          rlp::Item(data)});
}

rlp::Item Receipt::to_rlp() const {
  std::vector<rlp::Item> log_items;
  log_items.reserve(logs.size());
  for (const auto& l : logs) log_items.push_back(l.to_rlp());
  return rlp::Item::list({rlp::Item::u64(success ? 1 : 0),
                          rlp::Item::u64(cumulative_gas_used),
                          rlp::Item::list(std::move(log_items))});
}

Hash256 receipts_root(const std::vector<Receipt>& receipts) {
  std::vector<Bytes> encoded;
  encoded.reserve(receipts.size());
  for (const auto& r : receipts) encoded.push_back(r.encode());
  return trie::ordered_trie_root(encoded);
}

std::string to_string(TxError e) {
  switch (e) {
    case TxError::kInvalidSignature: return "invalid signature";
    case TxError::kWrongChainId: return "wrong chain id";
    case TxError::kNonceTooLow: return "nonce too low";
    case TxError::kNonceTooHigh: return "nonce too high";
    case TxError::kInsufficientFunds: return "insufficient funds";
    case TxError::kIntrinsicGasTooLow: return "intrinsic gas too low";
    case TxError::kGasLimitExceeded: return "block gas limit exceeded";
  }
  return "unknown";
}

std::optional<Address> validate_transaction(const State& state,
                                            const Transaction& tx,
                                            const ChainConfig& config,
                                            BlockNumber block_number,
                                            Gas block_gas_remaining,
                                            TxError& error_out) {
  const auto sender = tx.sender();
  if (!sender) {
    error_out = TxError::kInvalidSignature;
    return std::nullopt;
  }
  if (!replay_valid_on(tx, config.chain_id,
                       config.is_eip155(block_number))) {
    error_out = TxError::kWrongChainId;
    return std::nullopt;
  }
  const std::uint64_t expected_nonce = state.nonce(*sender);
  if (tx.nonce < expected_nonce) {
    error_out = TxError::kNonceTooLow;
    return std::nullopt;
  }
  if (tx.nonce > expected_nonce) {
    error_out = TxError::kNonceTooHigh;
    return std::nullopt;
  }
  if (tx.gas_limit > block_gas_remaining) {
    error_out = TxError::kGasLimitExceeded;
    return std::nullopt;
  }
  if (tx.intrinsic_gas(config.is_homestead(block_number)) > tx.gas_limit) {
    error_out = TxError::kIntrinsicGasTooLow;
    return std::nullopt;
  }
  const Wei max_cost = tx.value + tx.gas_price * U256(tx.gas_limit);
  if (state.balance(*sender) < max_cost) {
    error_out = TxError::kInsufficientFunds;
    return std::nullopt;
  }
  return sender;
}

ExecutionResult TransferExecutor::execute(State& state, const Transaction& tx,
                                          const BlockContext& ctx,
                                          const ChainConfig& config,
                                          Gas block_gas_remaining) {
  TxError error{};
  const auto sender =
      validate_transaction(state, tx, config, ctx.number, block_gas_remaining,
                           error);
  if (!sender) return {std::nullopt, error};

  const Gas gas_used = tx.intrinsic_gas(config.is_homestead(ctx.number));
  const Wei fee = tx.gas_price * U256(gas_used);

  const bool paid = state.sub_balance(*sender, tx.value + fee);
  (void)paid;  // guaranteed by validate_transaction
  state.increment_nonce(*sender);

  Receipt receipt;
  receipt.success = true;
  receipt.gas_used = gas_used;
  if (tx.to) {
    state.add_balance(*tx.to, tx.value);
  } else {
    // contract creation without code execution: the value sits in the
    // deterministic creation address
    Keccak256 h;
    h.update(sender->view());
    h.update(be_fixed64(tx.nonce));
    const Address created =
        Address::left_padded(BytesView(h.digest().data() + 12, 20));
    state.add_balance(created, tx.value);
    receipt.created_contract = created;
  }
  state.add_balance(ctx.coinbase, fee);
  return {receipt, std::nullopt};
}

}  // namespace forksim::core
