#include "core/hashcache.hpp"

#include "core/state.hpp"
#include "crypto/keccak.hpp"

namespace forksim::core {

Hash256 HeaderHashCache::hash_of(const BlockHeader& header) {
  Bytes encoding = header.encode();
  auto it = index_.find(encoding);
  if (it != index_.end()) {
    ++engine_counters_mut().header_cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
    return it->second->hash;
  }

  ++engine_counters_mut().header_cache_misses;
  const Hash256 hash = keccak256(encoding);
  lru_.push_front(Slot{encoding, hash});
  index_.emplace(std::move(encoding), lru_.begin());
  if (index_.size() > capacity_) {
    index_.erase(lru_.back().encoding);
    lru_.pop_back();
  }
  return hash;
}

}  // namespace forksim::core
