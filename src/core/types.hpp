// Core chain value types shared across the node: money, block numbers,
// gas, and chain identifiers.
#pragma once

#include <cstdint>
#include <optional>

#include "support/bytes.hpp"
#include "support/u256.hpp"

namespace forksim::core {

using Wei = U256;
using BlockNumber = std::uint64_t;
using Gas = std::uint64_t;
using Timestamp = std::uint64_t;  // seconds

/// EIP-155 chain identifiers for the two post-fork networks. ETH kept
/// chain id 1; ETC adopted 61 when it added replay protection in Jan 2017.
enum class ChainId : std::uint64_t {
  kEth = 1,
  kEtc = 61,
};

constexpr std::uint64_t to_u64(ChainId id) noexcept {
  return static_cast<std::uint64_t>(id);
}

/// 1 ether in wei (10^18).
inline Wei ether(std::uint64_t n) {
  return U256(n) * U256(1'000'000'000'000'000'000ull);
}

/// 1 gwei in wei (10^9).
inline Wei gwei(std::uint64_t n) { return U256(n) * U256(1'000'000'000ull); }

}  // namespace forksim::core
