// Transaction receipts and the executor interface that separates the chain
// layer from the EVM: core::Blockchain drives any Executor; evm::EvmExecutor
// provides the full virtual machine, and TransferExecutor provides a
// lightweight value-transfer-only semantics for protocol-level tests.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/transaction.hpp"
#include "core/state.hpp"
#include "rlp/rlp.hpp"

namespace forksim::core {

struct Log {
  Address address;
  std::vector<U256> topics;
  Bytes data;

  rlp::Item to_rlp() const;
};

struct Receipt {
  bool success = false;
  /// Cumulative gas used in the block up to and including this tx.
  Gas cumulative_gas_used = 0;
  /// Gas used by this transaction alone.
  Gas gas_used = 0;
  std::vector<Log> logs;
  /// Address of the created contract, if any.
  std::optional<Address> created_contract;

  rlp::Item to_rlp() const;
  Bytes encode() const { return rlp::encode(to_rlp()); }
};

/// Receipts trie root for a block body.
Hash256 receipts_root(const std::vector<Receipt>& receipts);

/// Context a transaction executes in.
struct BlockContext {
  Address coinbase;
  BlockNumber number = 0;
  Timestamp timestamp = 0;
  Gas gas_limit = 0;
  U256 difficulty;
};

/// Why a transaction was rejected before execution.
enum class TxError {
  kInvalidSignature,
  kWrongChainId,    // EIP-155 mismatch — a blocked replay
  kNonceTooLow,
  kNonceTooHigh,    // strict block execution requires exact nonce
  kInsufficientFunds,
  kIntrinsicGasTooLow,
  kGasLimitExceeded,  // over remaining block gas
};

std::string to_string(TxError e);

struct ExecutionResult {
  std::optional<Receipt> receipt;   // set on acceptance (even if reverted)
  std::optional<TxError> error;     // set on up-front rejection

  bool accepted() const noexcept { return receipt.has_value(); }
};

/// Strategy interface: executes one transaction against `state`.
/// Implementations must leave `state` unchanged when rejecting.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual ExecutionResult execute(State& state, const Transaction& tx,
                                  const BlockContext& ctx,
                                  const ChainConfig& config,
                                  Gas block_gas_remaining) = 0;
};

/// Validations shared by every executor: signature, chain id, nonce,
/// intrinsic gas, up-front balance, block gas. Returns the sender on
/// success.
std::optional<Address> validate_transaction(const State& state,
                                            const Transaction& tx,
                                            const ChainConfig& config,
                                            BlockNumber block_number,
                                            Gas block_gas_remaining,
                                            TxError& error_out);

/// Value-transfer-only executor: charges intrinsic gas, moves value, bumps
/// the nonce, pays the fee to the coinbase. Calls to contracts transfer
/// value but run no code. Used by protocol tests and the fast simulator.
class TransferExecutor final : public Executor {
 public:
  ExecutionResult execute(State& state, const Transaction& tx,
                          const BlockContext& ctx, const ChainConfig& config,
                          Gas block_gas_remaining) override;
};

}  // namespace forksim::core
