#include "core/state.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "rlp/rlp.hpp"

namespace forksim::core {

namespace {
EngineCounters g_engine_counters;
}  // namespace

const EngineCounters& engine_counters() noexcept { return g_engine_counters; }

void reset_engine_counters() noexcept { g_engine_counters = EngineCounters{}; }

EngineCounters& engine_counters_mut() noexcept { return g_engine_counters; }

void attach_engine_telemetry(obs::Registry& reg) {
  // Delta-based, like trie::attach_telemetry: the globals span the process,
  // a registry should only see its own run's work.
  const EngineCounters base = g_engine_counters;
  reg.add_collector([base](obs::Registry& r) {
    const EngineCounters& c = g_engine_counters;
    r.counter("state.snapshots").set(c.snapshots - base.snapshots);
    r.counter("state.reverts").set(c.reverts - base.reverts);
    r.counter("state.journal_entries")
        .set(c.journal_entries - base.journal_entries);
    r.counter("state.journal_entries_unwound")
        .set(c.journal_entries_unwound - base.journal_entries_unwound);
    // depth is a high-water mark, not a monotone tally: report it raw
    r.counter("state.journal_max_depth").set(c.journal_max_depth);
    r.counter("state.root_commits.full")
        .set(c.root_commits_full - base.root_commits_full);
    r.counter("state.root_commits.incremental")
        .set(c.root_commits_incremental - base.root_commits_incremental);
    r.counter("chain.header_cache.hits")
        .set(c.header_cache_hits - base.header_cache_hits);
    r.counter("chain.header_cache.misses")
        .set(c.header_cache_misses - base.header_cache_misses);
  });
}

Hash256 empty_code_hash() {
  static const Hash256 kHash = keccak256(BytesView{});
  return kHash;
}

State::State(const State& other) : accounts_(other.accounts_) {}

State& State::operator=(const State& other) {
  if (this == &other) return *this;
  accounts_ = other.accounts_;
  journal_.clear();
  root_trie_ = trie::Trie();
  root_cache_valid_ = false;
  dirty_.clear();
  return *this;
}

const Account* State::account(const Address& addr) const {
  auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

State::JournalEntry& State::journal(JournalEntry::Kind kind,
                                    const Address& addr) {
  ++g_engine_counters.journal_entries;
  JournalEntry& e = journal_.emplace_back();
  e.kind = kind;
  e.addr = addr;
  g_engine_counters.journal_max_depth = std::max<std::uint64_t>(
      g_engine_counters.journal_max_depth, journal_.size());
  return e;
}

void State::mark_dirty(const Address& addr) const {
  if (root_cache_valid_) dirty_.insert(addr);
}

Account& State::touch(const Address& addr) {
  auto [it, inserted] = accounts_.try_emplace(addr);
  if (inserted) journal(JournalEntry::Kind::kCreated, addr);
  mark_dirty(addr);
  return it->second;
}

Wei State::balance(const Address& addr) const {
  const Account* a = account(addr);
  return a ? a->balance : Wei(0);
}

void State::add_balance(const Address& addr, const Wei& amount) {
  Account& a = touch(addr);
  journal(JournalEntry::Kind::kBalance, addr).prev_word = a.balance;
  a.balance += amount;
}

bool State::sub_balance(const Address& addr, const Wei& amount) {
  auto it = accounts_.find(addr);
  if (it == accounts_.end() || it->second.balance < amount) return false;
  journal(JournalEntry::Kind::kBalance, addr).prev_word = it->second.balance;
  it->second.balance -= amount;
  mark_dirty(addr);
  return true;
}

std::uint64_t State::nonce(const Address& addr) const {
  const Account* a = account(addr);
  return a ? a->nonce : 0;
}

void State::set_nonce(const Address& addr, std::uint64_t nonce) {
  Account& a = touch(addr);
  journal(JournalEntry::Kind::kNonce, addr).prev_nonce = a.nonce;
  a.nonce = nonce;
}

void State::increment_nonce(const Address& addr) {
  Account& a = touch(addr);
  journal(JournalEntry::Kind::kNonce, addr).prev_nonce = a.nonce;
  ++a.nonce;
}

const Bytes& State::code(const Address& addr) const {
  static const Bytes kEmpty;
  const Account* a = account(addr);
  return a ? a->code : kEmpty;
}

void State::set_code(const Address& addr, Bytes code) {
  Account& a = touch(addr);
  journal(JournalEntry::Kind::kCode, addr).prev_code = std::move(a.code);
  a.code = std::move(code);
}

U256 State::storage_at(const Address& addr, const U256& key) const {
  const Account* a = account(addr);
  if (a == nullptr) return U256(0);
  auto it = a->storage.find(key);
  return it == a->storage.end() ? U256(0) : it->second;
}

void State::set_storage(const Address& addr, const U256& key,
                        const U256& value) {
  Account& a = touch(addr);
  auto slot = a.storage.find(key);
  JournalEntry& e = journal(JournalEntry::Kind::kStorage, addr);
  e.key = key;
  e.prev_word = slot == a.storage.end() ? U256(0) : slot->second;
  if (value.is_zero()) {
    if (slot != a.storage.end()) a.storage.erase(slot);
  } else if (slot != a.storage.end()) {
    slot->second = value;
  } else {
    a.storage.emplace(key, value);
  }
}

void State::destroy(const Address& addr) {
  auto it = accounts_.find(addr);
  if (it == accounts_.end()) return;
  journal(JournalEntry::Kind::kDestroyed, addr).prev_account =
      std::make_unique<Account>(std::move(it->second));
  accounts_.erase(it);
  mark_dirty(addr);
}

std::vector<Address> State::addresses() const {
  std::vector<Address> out;
  out.reserve(accounts_.size());
  for (const auto& [addr, _] : accounts_) out.push_back(addr);
  return out;
}

State::Snapshot State::snapshot() const {
  ++g_engine_counters.snapshots;
  return journal_.size();
}

void State::undo(JournalEntry& e) {
  mark_dirty(e.addr);
  switch (e.kind) {
    case JournalEntry::Kind::kCreated:
      accounts_.erase(e.addr);
      return;
    case JournalEntry::Kind::kBalance:
      accounts_.find(e.addr)->second.balance = e.prev_word;
      return;
    case JournalEntry::Kind::kNonce:
      accounts_.find(e.addr)->second.nonce = e.prev_nonce;
      return;
    case JournalEntry::Kind::kCode:
      accounts_.find(e.addr)->second.code = std::move(e.prev_code);
      return;
    case JournalEntry::Kind::kStorage: {
      Account& a = accounts_.find(e.addr)->second;
      if (e.prev_word.is_zero())
        a.storage.erase(e.key);
      else
        a.storage[e.key] = e.prev_word;
      return;
    }
    case JournalEntry::Kind::kDestroyed:
      accounts_.emplace(e.addr, std::move(*e.prev_account));
      return;
  }
}

void State::revert(Snapshot mark) {
  ++g_engine_counters.reverts;
  while (journal_.size() > mark) {
    undo(journal_.back());
    journal_.pop_back();
    ++g_engine_counters.journal_entries_unwound;
  }
}

void State::clear_journal() { journal_.clear(); }

Hash256 State::storage_root(const Account& account) {
  if (account.storage.empty()) return trie::empty_trie_root();
  trie::Trie t;
  for (const auto& [key, value] : account.storage) {
    const auto key_bytes = key.to_be();
    const Hash256 hashed = keccak256(BytesView(key_bytes.data(), 32));
    t.put(hashed.view(), rlp::encode(rlp::Item::u256(value)));
  }
  return t.root_hash();
}

namespace {

/// rlp([nonce, balance, storage_root, code_hash]) — the account leaf.
Bytes account_leaf(const Account& account) {
  const rlp::Item body = rlp::Item::list({
      rlp::Item::u64(account.nonce),
      rlp::Item::u256(account.balance),
      rlp::Item::str(State::storage_root(account).view()),
      rlp::Item::str(account.code_hash().view()),
  });
  return rlp::encode(body);
}

}  // namespace

Hash256 State::root() const {
  if (!root_cache_valid_) {
    // first use (or first after a copy): full rebuild into the cached trie
    ++g_engine_counters.root_commits_full;
    root_trie_ = trie::Trie();
    for (const auto& [addr, account] : accounts_) {
      if (account.is_empty()) continue;  // empty accounts are not committed
      root_trie_.put(keccak256(addr.view()).view(), account_leaf(account));
    }
    root_cache_valid_ = true;
    dirty_.clear();
    return root_trie_.root_hash();
  }

  // incremental commit: patch only the leaves of accounts dirtied since the
  // previous root(); the trie re-hashes just the touched paths
  ++g_engine_counters.root_commits_incremental;
  for (const Address& addr : dirty_) {
    const Hash256 key = keccak256(addr.view());
    auto it = accounts_.find(addr);
    if (it == accounts_.end() || it->second.is_empty())
      root_trie_.erase(key.view());
    else
      root_trie_.put(key.view(), account_leaf(it->second));
  }
  dirty_.clear();
  return root_trie_.root_hash();
}

void State::invalidate_root_cache() const {
  root_cache_valid_ = false;
  root_trie_ = trie::Trie();
  dirty_.clear();
}

void apply_dao_refund(State& state, const std::vector<Address>& dao_accounts,
                      const Address& refund) {
  for (const Address& addr : dao_accounts) {
    const Wei amount = state.balance(addr);
    if (amount.is_zero()) continue;
    const bool ok = state.sub_balance(addr, amount);
    (void)ok;  // amount just read from the same account; cannot fail
    state.add_balance(refund, amount);
  }
}

}  // namespace forksim::core
