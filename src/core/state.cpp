#include "core/state.hpp"

#include "rlp/rlp.hpp"
#include "trie/trie.hpp"

namespace forksim::core {

Hash256 empty_code_hash() {
  static const Hash256 kHash = keccak256(BytesView{});
  return kHash;
}

const Account* State::account(const Address& addr) const {
  auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

Wei State::balance(const Address& addr) const {
  const Account* a = account(addr);
  return a ? a->balance : Wei(0);
}

void State::add_balance(const Address& addr, const Wei& amount) {
  touch(addr).balance += amount;
}

bool State::sub_balance(const Address& addr, const Wei& amount) {
  Account* a = accounts_.contains(addr) ? &accounts_[addr] : nullptr;
  if (a == nullptr || a->balance < amount) return false;
  a->balance -= amount;
  return true;
}

std::uint64_t State::nonce(const Address& addr) const {
  const Account* a = account(addr);
  return a ? a->nonce : 0;
}

void State::set_nonce(const Address& addr, std::uint64_t nonce) {
  touch(addr).nonce = nonce;
}

void State::increment_nonce(const Address& addr) { ++touch(addr).nonce; }

const Bytes& State::code(const Address& addr) const {
  static const Bytes kEmpty;
  const Account* a = account(addr);
  return a ? a->code : kEmpty;
}

void State::set_code(const Address& addr, Bytes code) {
  touch(addr).code = std::move(code);
}

U256 State::storage_at(const Address& addr, const U256& key) const {
  const Account* a = account(addr);
  if (a == nullptr) return U256(0);
  auto it = a->storage.find(key);
  return it == a->storage.end() ? U256(0) : it->second;
}

void State::set_storage(const Address& addr, const U256& key,
                        const U256& value) {
  Account& a = touch(addr);
  if (value.is_zero())
    a.storage.erase(key);
  else
    a.storage[key] = value;
}

std::vector<Address> State::addresses() const {
  std::vector<Address> out;
  out.reserve(accounts_.size());
  for (const auto& [addr, _] : accounts_) out.push_back(addr);
  return out;
}

Hash256 State::storage_root(const Account& account) {
  if (account.storage.empty()) return trie::empty_trie_root();
  trie::Trie t;
  for (const auto& [key, value] : account.storage) {
    const auto key_bytes = key.to_be();
    const Hash256 hashed = keccak256(BytesView(key_bytes.data(), 32));
    t.put(hashed.view(), rlp::encode(rlp::Item::u256(value)));
  }
  return t.root_hash();
}

Hash256 State::root() const {
  trie::Trie t;
  for (const auto& [addr, account] : accounts_) {
    if (account.is_empty()) continue;  // empty accounts are not committed
    const rlp::Item body = rlp::Item::list({
        rlp::Item::u64(account.nonce),
        rlp::Item::u256(account.balance),
        rlp::Item::str(storage_root(account).view()),
        rlp::Item::str(account.code_hash().view()),
    });
    t.put(keccak256(addr.view()).view(), rlp::encode(body));
  }
  return t.root_hash();
}

void apply_dao_refund(State& state, const std::vector<Address>& dao_accounts,
                      const Address& refund) {
  for (const Address& addr : dao_accounts) {
    const Wei amount = state.balance(addr);
    if (amount.is_zero()) continue;
    const bool ok = state.sub_balance(addr, amount);
    (void)ok;  // amount just read from the same account; cannot fail
    state.add_balance(refund, amount);
  }
}

}  // namespace forksim::core
