// Transaction pool: pending transactions a node has heard via gossip,
// validated against the current head state, ordered by gas price for block
// assembly. This is also where replay ("echo") transactions enter a chain:
// a legacy transaction rebroadcast from the other network passes every check
// here as long as the sender's pre-fork account still has the funds.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"
#include "core/state.hpp"
#include "core/transaction.hpp"
#include "obs/metrics.hpp"

namespace forksim::core {

enum class PoolAddResult {
  kAdded,
  kAlreadyKnown,
  kInvalidSignature,
  kWrongChainId,   // EIP-155 rejected a cross-chain replay at the pool edge
  kNonceTooLow,
  kUnderpriced,    // below the pool's min gas price
  kPoolFull,
  kReplacedExisting,  // same sender+nonce with a better price
};

std::string to_string(PoolAddResult r);

class TxPool {
 public:
  struct Options {
    std::size_t capacity = 16384;
    Wei min_gas_price = Wei(1);
    /// Allow at most this many queued nonces ahead of the account nonce.
    std::uint64_t max_nonce_gap = 64;
  };

  TxPool(const ChainConfig& config, Options options)
      : config_(config), options_(options) {}
  explicit TxPool(const ChainConfig& config) : TxPool(config, Options()) {}

  /// Validate against `state` at height `head_number` and admit.
  PoolAddResult add(const Transaction& tx, const State& state,
                    BlockNumber head_number);

  bool contains(const Hash256& tx_hash) const {
    return by_hash_.contains(tx_hash);
  }

  std::size_t size() const noexcept { return by_hash_.size(); }

  /// Best candidates for a new block: price-ordered, nonce-contiguous per
  /// sender, up to `max_count`.
  std::vector<Transaction> collect(std::size_t max_count,
                                   const State& state) const;

  /// Drop everything included in a new block (and anything whose nonce the
  /// block made stale).
  void remove_included(const std::vector<Transaction>& included,
                       const State& new_state);

  /// Drop every pending transaction (a cold-restarted process lost its
  /// mempool). Telemetry counters survive; only the content is gone.
  void clear() {
    by_hash_.clear();
    by_sender_.clear();
    obs::set(tm_size_, 0.0);
  }

  /// All pending hashes (for gossip inventory).
  std::vector<Hash256> hashes() const;

  const Transaction* by_hash(const Hash256& h) const;

  /// How many pending transactions a full pool evicted to admit
  /// better-priced newcomers (backpressure under spam).
  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Register one txpool.<result> counter per admission outcome plus a
  /// txpool.size gauge in `reg`. Shared registries aggregate across pools.
  void attach_telemetry(obs::Registry& reg);

 private:
  PoolAddResult add_impl(const Transaction& tx, const State& state,
                         BlockNumber head_number);

  struct Entry {
    Transaction tx;
    Address sender;
  };

  const ChainConfig& config_;
  Options options_;
  std::unordered_map<Hash256, Entry, Hash256Hasher> by_hash_;
  /// sender -> nonce -> tx hash (for replacement and contiguity checks)
  std::unordered_map<Address, std::map<std::uint64_t, Hash256>, AddressHasher>
      by_sender_;
  std::uint64_t evictions_ = 0;
  std::array<obs::Counter*, 8> tm_results_{};
  obs::Gauge* tm_size_ = nullptr;
  /// Lazily registered on the first eviction: adversary-free runs must keep
  /// the registry's metric set (and thus its fingerprint) unchanged.
  obs::Counter* tm_evicted_ = nullptr;
  obs::Registry* reg_ = nullptr;
};

}  // namespace forksim::core
