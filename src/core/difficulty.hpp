// Difficulty adjustment — the feedback controller at the heart of the
// paper's Figure 1.
//
// Homestead rule (Yellow Paper eq. 41-46, bomb omitted by default):
//   adj    = max(1 - (timestamp - parent_timestamp) / 10, -99)
//   diff   = parent_diff + (parent_diff / 2048) * adj
//   diff   = max(diff, 131072)
// The -99 floor caps how fast difficulty can fall per block. When 90 % of
// ETC's hashpower vanished at the fork, blocks arrived ~10x slower but each
// block could only shed ~4.8 % of difficulty — hence the ~2-day recovery and
// the >1200 s inter-block deltas the paper measures.
//
// Frontier rule (pre-Homestead):
//   diff = parent_diff ± parent_diff / 2048   (+ if delta < 13 s, − otherwise)
#pragma once

#include "core/config.hpp"
#include "core/types.hpp"

namespace forksim::core {

/// Difficulty for a child of (parent_difficulty, parent_timestamp) at height
/// `number` with the given timestamp, under `config`'s rules.
U256 next_difficulty(const ChainConfig& config, BlockNumber number,
                     Timestamp timestamp, const U256& parent_difficulty,
                     Timestamp parent_timestamp);

/// The Homestead adjustment factor in bound-divisor notches
/// (max(1 - delta/10, -99)); exposed for tests and the ablation bench.
std::int64_t homestead_adjustment(const ChainConfig& config,
                                  Timestamp timestamp,
                                  Timestamp parent_timestamp) noexcept;

/// Alternative retargeting rules for bench/ablate_difficulty: what if the
/// protocol had no per-block cap, or retargeted like Bitcoin (epoch
/// average)?
enum class RetargetRule {
  kHomestead,     // the real rule (capped proportional controller)
  kUncapped,      // proportional to observed delta, no -99 floor
  kEpochAverage,  // Bitcoin-style: rescale by target/actual over a window
};

/// One retarget step under the selected rule; `window_actual_seconds` and
/// `window_blocks` are only read by kEpochAverage.
U256 retarget(RetargetRule rule, const ChainConfig& config, BlockNumber number,
              Timestamp timestamp, const U256& parent_difficulty,
              Timestamp parent_timestamp, double window_actual_seconds = 0,
              std::uint64_t window_blocks = 0);

}  // namespace forksim::core
