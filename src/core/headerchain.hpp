// Light-client header chain: consensus-validates headers only (difficulty
// rule, timestamps, gas-limit bounds, the DAO fork marker) and follows the
// heaviest chain — no bodies, no state execution. This is what a block
// explorer or monitoring node needs to track both sides of a fork cheaply,
// and it shares the exact validation rules with the full Blockchain via
// validate_child_header().
#pragma once

#include <map>
#include <unordered_map>

#include "core/block.hpp"
#include "core/config.hpp"

namespace forksim::core {

enum class HeaderImportResult {
  kImported,
  kAlreadyKnown,
  kUnknownParent,
  kInvalid,    // consensus rule violated
  kWrongFork,  // DAO fork-block marker rule violated
};

std::string to_string(HeaderImportResult r);

/// Shared consensus validation of `header` as a child of `parent` under
/// `config` (difficulty, monotonic timestamp, gas-limit bounds, DAO rule).
HeaderImportResult validate_child_header(const ChainConfig& config,
                                         const BlockHeader& parent,
                                         const BlockHeader& header);

class HeaderChain {
 public:
  HeaderChain(ChainConfig config, const BlockHeader& genesis);

  const ChainConfig& config() const noexcept { return config_; }

  HeaderImportResult import(const BlockHeader& header);

  const BlockHeader& head() const;
  BlockNumber height() const;
  U256 head_total_difficulty() const;

  bool contains(const Hash256& hash) const { return records_.contains(hash); }
  const BlockHeader* by_hash(const Hash256& hash) const;
  /// Canonical header at height n (nullptr above head).
  const BlockHeader* by_number(BlockNumber n) const;

  std::size_t header_count() const noexcept { return records_.size(); }

 private:
  struct Record {
    BlockHeader header;
    U256 total_difficulty;
  };

  void update_canonical(const Hash256& new_head);

  ChainConfig config_;
  std::unordered_map<Hash256, Record, Hash256Hasher> records_;
  std::map<BlockNumber, Hash256> canonical_;
  Hash256 head_hash_;
};

}  // namespace forksim::core
