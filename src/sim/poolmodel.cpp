#include "sim/poolmodel.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/stats.hpp"

namespace forksim::sim {

PoolPopulation PoolPopulation::eth_like(PoolDynamicsParams params) {
  // Shaped after the mid-2016 Ethereum pool landscape: one dominant pool
  // (~1/4 of the network), a strong second, a long tail.
  return PoolPopulation({0.26, 0.17, 0.12, 0.08, 0.06, 0.05, 0.04, 0.04,
                         0.03, 0.03, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02},
                        params);
}

PoolPopulation PoolPopulation::fragmented(std::size_t pools,
                                          PoolDynamicsParams params,
                                          Rng& rng) {
  std::vector<double> weights(pools);
  for (auto& w : weights) w = 1.0 + rng.uniform01();  // near-uniform
  return PoolPopulation(std::move(weights), params);
}

void PoolPopulation::normalize() {
  const double total = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  if (total <= 0) return;
  for (auto& w : weights_) w /= total;
}

void PoolPopulation::step_day(Rng& rng) {
  // detach `churn` of every pool's hashpower into a free pool of miners
  double free_power = 0;
  for (auto& w : weights_) {
    const double detached = w * params_.churn;
    w -= detached;
    free_power += detached;
  }

  // preferential re-attachment: weight ∝ size^alpha, damped toward zero as
  // a pool approaches the concentration cap (miners avoid near-majority
  // pools), with a small uniform floor so empty pools aren't absorbing
  auto attachment = [&](double w) {
    // full attachment below ~80 % of the cap, fading to a floor at the cap:
    // the aversion only bites for pools visibly approaching the ceiling
    const double cap = params_.concentration_cap;
    const double fade_start = 0.8 * cap;
    double repulsion = 1.0;
    if (w > fade_start)
      repulsion = std::max(0.02, (cap - w) / (cap - fade_start));
    return std::pow(w + 1e-6, params_.alpha) * repulsion;
  };
  std::vector<double> attach(weights_.size());
  for (std::size_t i = 0; i < weights_.size(); ++i)
    attach[i] = attachment(weights_[i]);
  const double attach_total =
      std::accumulate(attach.begin(), attach.end(), 0.0);
  for (std::size_t i = 0; i < weights_.size(); ++i)
    weights_[i] += free_power * attach[i] / attach_total;

  // entry: a new small pool siphons a sliver from everyone
  if (rng.chance(params_.entry_prob)) {
    const double size = params_.entry_size;
    for (auto& w : weights_) w *= (1.0 - size);
    weights_.push_back(size);
  }

  // exit: wind down dust pools
  double released = 0;
  for (auto it = weights_.begin(); it != weights_.end();) {
    if (*it < params_.exit_threshold && weights_.size() > 3) {
      released += *it;
      it = weights_.erase(it);
    } else {
      ++it;
    }
  }
  if (released > 0 && !weights_.empty()) {
    // released miners re-attach preferentially too
    std::vector<double> attach2(weights_.size());
    for (std::size_t i = 0; i < weights_.size(); ++i)
      attach2[i] = attachment(weights_[i]);
    const double total2 =
        std::accumulate(attach2.begin(), attach2.end(), 0.0);
    for (std::size_t i = 0; i < weights_.size(); ++i)
      weights_[i] += released * attach2[i] / total2;
  }
  normalize();
}

double PoolPopulation::top_share(std::size_t n) const {
  return top_n_share(weights_, n);
}

}  // namespace forksim::sim
