// Full-node fork scenario: a complete simulated network of protocol-
// faithful nodes living through the DAO hard fork. Used by the partition
// examples, the gossip ablation, and the integration tests — everywhere the
// paper's phenomena should *emerge* from the protocol rather than be
// parameterized.
//
// Timeline: all nodes share genesis and history. `fork_block` is scheduled
// in both configs; `dao_support` decides each node's side. When the chain
// reaches the fork height the populations diverge: fork blocks are mutually
// rejected (core::Blockchain), DAO challenges sever peer sessions
// (p2p::PeerSet), and two disjoint gossip components form — the partition.
#pragma once

#include <memory>
#include <optional>

#include "core/receipt.hpp"
#include "evm/executor.hpp"
#include "p2p/geo.hpp"
#include "p2p/topology.hpp"
#include "sim/clients.hpp"
#include "sim/miner.hpp"
#include "sim/node.hpp"

namespace forksim::sim {

struct ScenarioParams {
  std::size_t nodes_eth = 18;       // nodes that adopt the fork
  std::size_t nodes_etc = 2;        // nodes that reject it (~10 %, paper §1)
  std::size_t miners_per_side_eth = 6;
  std::size_t miners_per_side_etc = 1;
  double total_hashrate = 50e3;     // hashes/second across all miners
  /// Fraction of hashpower staying on ETC after the fork (paper: ~10 %).
  double etc_hashpower_fraction = 0.10;
  core::BlockNumber fork_block = 30;
  U256 genesis_difficulty = U256(500'000);
  std::size_t funded_accounts = 32;
  p2p::LatencyModel latency = p2p::LatencyModel::wan();
  /// Explicit gossip topology (p2p/topology.hpp). Disabled (the default)
  /// keeps the historical wiring: everyone dials node 0 plus one random
  /// earlier node and the mesh emerges from discovery. Enabled, each
  /// node's bootstrap list is its generated-graph neighborhood, so degree
  /// distribution becomes a controlled variable. Chaos and matrix
  /// scenarios inherit this through ChaosParams::scenario unchanged.
  p2p::TopologyParams topology;
  /// Region-based latency (p2p/geo.hpp). Disabled by default; enabled,
  /// every link's base delay comes from the seeded region placement's
  /// RTT-class pair instead of the uniform `latency` model.
  p2p::GeoParams geo;
  /// Client-diversity + consensus-bug layer (sim/clients.hpp). Disabled by
  /// default; enabled, each node draws a client family from the seeded mix
  /// (fanout/tick multipliers applied), buggy-family nodes share a
  /// QuirkRuleSet overlay, and — when clients.patch_time >= 0 — the hotfix
  /// is scheduled at that sim time (the quirk disables, patched nodes pull
  /// the disputed branch back for full revalidation). Strictly opt-in:
  /// zero extra Rng draws while disabled.
  ClientMixParams clients;
  NodeOptions node_options;
  std::uint64_t seed = 1;
  /// Conservative-PDES epoch batching for the event loop. 1 (the default)
  /// keeps run_for on plain EventLoop::run_until. > 1 opts run_for into
  /// lookahead-bounded epochs (EventLoop::run_epochs_until) with the bound
  /// derived from the latency floor (uniform base, or the minimum geo
  /// region-pair one-way RTT) — draw-for-draw identical to run_until by
  /// construction — and publishes the node partition via shard_plan() for
  /// sharded executors. Values > node count are rejected by ChaosParams
  /// and the ForkScenario constructor.
  std::size_t num_shards = 1;
};

class ForkScenario {
 public:
  explicit ForkScenario(ScenarioParams params);
  ~ForkScenario();

  p2p::EventLoop& loop() noexcept { return loop_; }
  p2p::Network& network() noexcept { return network_; }
  const ScenarioParams& params() const noexcept { return params_; }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  FullNode& node(std::size_t i) { return *nodes_[i]; }
  Miner& miner(std::size_t i) { return *miners_[i]; }
  std::size_t miner_count() const noexcept { return miners_.size(); }

  /// Is node i on the fork-supporting (ETH) side?
  bool is_eth_node(std::size_t i) const { return i < params_.nodes_eth; }

  /// The generated gossip topology (null when params.topology is
  /// disabled) and region placement (null when params.geo is disabled).
  const p2p::Topology* topology() const noexcept {
    return params_.topology.enabled ? &topology_ : nullptr;
  }
  const p2p::GeoModel* geo_model() const noexcept {
    return geo_ ? &*geo_ : nullptr;
  }

  /// Funded account keys (same on every node — pre-fork state).
  const std::vector<PrivateKey>& accounts() const noexcept {
    return accounts_;
  }

  /// Node i's client family (kGeth for every node when the clients layer
  /// is disabled), the full seeded assignment (empty while disabled), and
  /// the shared quirk rule set (null while disabled).
  ClientFamily client_family_of(std::size_t i) const {
    return client_families_.empty() ? ClientFamily::kGeth
                                    : client_families_[i];
  }
  const std::vector<ClientFamily>& client_families() const noexcept {
    return client_families_;
  }
  const QuirkRuleSet* quirk_rules() const noexcept {
    return quirk_rules_.get();
  }

  /// Advance the simulation. With params.num_shards > 1 this drives the
  /// loop in conservative-PDES lookahead epochs (identical event order —
  /// see EventLoop::run_epochs_until); otherwise a plain run_until.
  void run_for(double seconds);

  /// The epoch bound used by run_for when num_shards > 1: the scenario's
  /// minimum one-way link latency floor (uniform base, or the smallest geo
  /// region-pair RTT / 2) — never above any actual link's latency.
  double epoch_lookahead() const noexcept { return epoch_lookahead_; }
  /// Epochs executed by run_for so far (0 while num_shards == 1).
  std::size_t epochs_run() const noexcept { return epochs_run_; }
  /// Contiguous node partition for params.num_shards shards, paired with
  /// the epoch lookahead — what a sharded executor consumes.
  p2p::ShardPlan shard_plan() const;

  // ---- measurements ------------------------------------------------------
  /// Number of distinct canonical head hashes across running nodes; 1 =
  /// consensus, 2 = the partition (plus transient forks).
  std::size_t distinct_heads() const;
  /// Height of each side's best chain.
  core::BlockNumber best_height_eth() const;
  core::BlockNumber best_height_etc() const;
  /// Active peer links crossing the ETH/ETC divide.
  std::size_t cross_side_links() const;
  /// Total wrong-fork disconnects observed (the DAO challenge firing).
  std::uint64_t total_wrong_fork_drops() const;

  /// Wire every layer into `reg`: the network substrate, the shared EVM
  /// executor (per-opcode tallies), the trie counters, and each node's
  /// chain, txpool, sync, and peer metrics. With `tracer` non-null, nodes
  /// also emit sim-time trace events on lane = node index. Attaching never
  /// consumes Rng draws — a seeded run is unchanged draw for draw.
  void attach_telemetry(obs::Registry& reg,
                        obs::EventTracer* tracer = nullptr);

 private:
  ScenarioParams params_;
  Rng rng_;
  p2p::EventLoop loop_;
  p2p::Network network_;
  evm::EvmExecutor executor_;
  p2p::Topology topology_;            // empty unless params.topology.enabled
  std::optional<p2p::GeoModel> geo_;  // engaged iff params.geo.enabled
  std::vector<PrivateKey> accounts_;
  std::vector<ClientFamily> client_families_;   // empty unless clients on
  std::unique_ptr<QuirkRuleSet> quirk_rules_;   // null unless clients on
  std::vector<std::unique_ptr<FullNode>> nodes_;
  std::vector<std::unique_ptr<Miner>> miners_;
  double epoch_lookahead_ = 0.0;
  std::size_t epochs_run_ = 0;
};

}  // namespace forksim::sim
