#include "sim/node.hpp"

#include <algorithm>
#include <cmath>

namespace forksim::sim {

using namespace p2p;

namespace {

/// The eclipse defense owns the inbound slot split; fold it into the peer
/// policy before the PeerSet is constructed. Explicit PeerPolicy caps win
/// over the eclipse defaults.
PeerPolicy effective_peer_policy(const NodeOptions& options) {
  PeerPolicy policy = options.peer_policy;
  if (options.eclipse.enabled) {
    if (policy.max_inbound == 0) policy.max_inbound = options.eclipse.max_inbound;
    if (policy.inbound_group_cap == 0)
      policy.inbound_group_cap = options.eclipse.inbound_group_cap;
  }
  return policy;
}

}  // namespace

FullNode::FullNode(Network& network, NodeId id, core::ChainConfig config,
                   core::Executor& executor, const core::GenesisAlloc& alloc,
                   Rng rng, NodeOptions options)
    : network_(network),
      id_(id),
      chain_(std::move(config), executor, alloc, options.genesis_gas_limit,
             options.genesis_difficulty),
      pool_(chain_.config()),
      rng_(rng),
      options_(options),
      discovery_(id, rng_.fork(),
                 [this](const NodeId& to, const Message& m) { send(to, m); }),
      peers_(chain_.config().chain_id, chain_.genesis().hash(),
             options.max_peers,
             PeerSet::Callbacks{
                 [this](const NodeId& to, const Message& m) { send(to, m); },
                 [this] { return make_status(); },
                 [this] { return dao_header(); },
                 [this](const std::optional<core::BlockHeader>& h) {
                   return check_dao_header(h);
                 },
                 [this](const NodeId& peer, const Status& status) {
                   on_peer_active(peer, status);
                 },
                 [this](const NodeId& peer, DisconnectReason reason) {
                   // discovery is fork-agnostic (paper §2.2: Kademlia is
                   // not part of consensus) — only evict peers on a truly
                   // different network; wrong-fork and stalled peers stay
                   // in the table, exactly as on mainnet
                   if (reason == DisconnectReason::kIncompatibleNetwork)
                     discovery_.on_peer_dead(peer);
                   peer_first_seen_.erase(peer);
                 },
                 [this] { return network_.loop().now(); },
             },
             effective_peer_policy(options)) {
  discovery_.set_on_discovered([this](const NodeId& candidate) {
    if (running_ && peers_.active_count() < options_.target_peers) {
      if (options_.eclipse.enabled && dial_over_group_cap(candidate)) return;
      peers_.connect(candidate);
    }
  });
  if (options_.eclipse.enabled) {
    DiscoveryDefense defense;
    defense.enabled = true;
    defense.table_group_cap = options_.eclipse.table_group_cap;
    defense.bucket_group_cap = options_.eclipse.bucket_group_cap;
    defense.pending_ticks = options_.eclipse.pending_ticks;
    discovery_.set_defense(defense);
  }
}

void FullNode::set_region_fn(
    std::function<std::uint32_t(const p2p::NodeId&)> fn) {
  region_fn_ = fn;
  discovery_.set_group_fn(fn);
  peers_.set_group_fn(std::move(fn));
}

FullNode::~FullNode() { shutdown(); }

void FullNode::attach_telemetry(obs::Registry& reg, obs::EventTracer* tracer,
                                std::uint32_t lane) {
  tm_imported_ = &reg.counter("node.blocks_imported");
  tm_txs_ = &reg.counter("node.txs_received");
  tm_dup_push_ = &reg.counter("node.duplicate_block_pushes");
  tm_sync_timeouts_ = &reg.counter("node.sync_timeouts");
  tm_sync_retries_ = &reg.counter("node.sync_retries");
  tm_sync_gave_up_ = &reg.counter("node.sync_gave_up");
  tm_dials_ = &reg.counter("node.dial_attempts");
  tm_orphan_evict_ = &reg.counter("node.orphan_evictions");
  tm_orphan_occ_ = &reg.gauge("node.orphan_occupancy");
  tracer_ = tracer;
  lane_ = lane;
  tm_imported_->inc(blocks_imported_);
  tm_txs_->inc(txs_received_);
  tm_dup_push_->inc(duplicate_block_pushes_);
  tm_sync_timeouts_->inc(sync_timeouts_);
  tm_sync_retries_->inc(sync_retries_);
  tm_sync_gave_up_->inc(sync_gave_up_);
  tm_dials_->inc(dial_attempts_);
  tm_orphan_evict_->inc(orphan_evictions_);
  // Defense counters stay lazily registered (created on the first
  // adversarial event): attaching must not change the metric set — and so
  // the registry fingerprint — of adversary-free runs.
  reg_ = &reg;
  struct Fold {
    std::uint64_t value;
    obs::Counter** slot;
    const char* name;
  };
  for (const Fold& f : {
           Fold{invalid_cache_hits_, &tm_cache_hits_,
                "node.ingress.invalid_cache_hits"},
           Fold{precheck_rejections_, &tm_precheck_,
                "node.ingress.precheck_rejected"},
           Fold{rate_limited_, &tm_rate_limited_,
                "node.ingress.rate_limited"},
           Fold{equivocations_, &tm_equivocations_,
                "node.ingress.equivocations"},
           Fold{withheld_, &tm_withheld_, "node.ingress.withheld"},
           Fold{wasted_executions_, &tm_wasted_, "node.wasted_executions"},
           Fold{disputed_blocks_, &tm_disputed_,
                "node.fork_monitor.disputed_blocks"},
           Fold{divergence_events_, &tm_divergence_,
                "node.fork_monitor.divergence_events"},
           Fold{consensus_patches_, &tm_patches_,
                "node.fork_monitor.consensus_patches"},
           Fold{eclipse_suspicions_, &tm_eclipse_suspicions_,
                "node.eclipse.suspicions"},
           Fold{eclipse_recoveries_, &tm_eclipse_recoveries_,
                "node.eclipse.recoveries"},
           Fold{cold_restarts_, &tm_cold_restarts_, "node.cold_restarts"},
           Fold{recovery_scanned_, &tm_rec_scanned_,
                "db.recovery.records_scanned"},
           Fold{recovery_corrupt_, &tm_rec_corrupt_,
                "db.recovery.corrupt_records"},
           Fold{recovery_replayed_, &tm_rec_replayed_,
                "db.recovery.blocks_replayed"},
       }) {
    if (f.value == 0) continue;
    *f.slot = &reg.counter(f.name);
    (*f.slot)->inc(f.value);
  }
  if (recovery_seconds_ > 0.0) {
    tm_rec_seconds_ = &reg.gauge("db.recovery.seconds");
    tm_rec_seconds_->add(recovery_seconds_);
  }
  peers_.attach_telemetry(reg);
}

void FullNode::bump_defense(obs::Counter*& c, const char* name) {
  if (c == nullptr && reg_ != nullptr) c = &reg_->counter(name);
  obs::inc(c);
}

core::ImportOutcome FullNode::import_block(const core::Block& block) {
  const auto outcome = chain_.import(block);
  if (outcome.result == core::ImportResult::kImported && store_ != nullptr &&
      !replaying_)
    store_->append(block);
  return outcome;
}

RecoveryOutcome FullNode::cold_restart(
    const std::vector<p2p::NodeId>& bootstrap) {
  shutdown();
  ++cold_restarts_;
  bump_defense(tm_cold_restarts_, "node.cold_restarts");

  // the process is gone: in-memory chain and mempool with it
  chain_.reset_to_genesis();
  pool_.clear();
  rechallenged_at_fork_ = false;
  orphans_.clear();
  orphan_order_.clear();
  disputed_hashes_.clear();
  disputed_order_.clear();
  disputed_headers_.clear();
  disputed_ = DisputedRange{};
  update_orphan_gauge();

  RecoveryOutcome out;
  if (store_ != nullptr) {
    // scan + repair the log, then replay the checksummed survivors
    const std::vector<core::Block> survivors = store_->recover(&out.store);
    replaying_ = true;
    for (const core::Block& block : survivors) {
      const auto outcome = chain_.import(block);
      if (outcome.result == core::ImportResult::kImported) {
        ++blocks_imported_;
        obs::inc(tm_imported_);
        ++out.blocks_replayed;
      } else {
        ++out.replay_rejected;  // should be impossible: checksummed input
      }
    }
    replaying_ = false;
  }
  out.resume_delay = options_.recovery_seconds_per_block *
                     static_cast<double>(out.blocks_replayed);

  recovery_scanned_ += out.store.records_scanned;
  recovery_corrupt_ += out.store.corrupt_records;
  recovery_replayed_ += out.blocks_replayed;
  recovery_rejects_ += out.replay_rejected;
  recovery_seconds_ += out.resume_delay;
  if (reg_ != nullptr) {
    // lazily registered, like the defense counters: store-less runs keep
    // their metric set (and registry fingerprint) unchanged
    const auto lazy = [&](obs::Counter*& c, const char* name) -> obs::Counter& {
      if (c == nullptr) c = &reg_->counter(name);
      return *c;
    };
    lazy(tm_rec_scanned_, "db.recovery.records_scanned")
        .inc(out.store.records_scanned);
    lazy(tm_rec_corrupt_, "db.recovery.corrupt_records")
        .inc(out.store.corrupt_records);
    lazy(tm_rec_replayed_, "db.recovery.blocks_replayed")
        .inc(out.blocks_replayed);
    if (tm_rec_seconds_ == nullptr)
      tm_rec_seconds_ = &reg_->gauge("db.recovery.seconds");
    tm_rec_seconds_->add(out.resume_delay);
  }
  if (tracer_ != nullptr)
    tracer_->instant(
        "node", "cold_restart", lane_,
        {{"replayed", static_cast<std::int64_t>(out.blocks_replayed)},
         {"corrupt", static_cast<std::int64_t>(out.store.corrupt_records)}});

  // An eclipse-defended node redials its persisted anchors alongside the
  // bootstrap seeds: a reboot is exactly the moment an eclipse attacker
  // waits for, and the anchors are live peers the attacker never chose.
  std::vector<p2p::NodeId> rejoin = bootstrap;
  if (options_.eclipse.enabled && store_ != nullptr) {
    for (const Hash256& anchor : store_->load_anchors())
      if (std::find(rejoin.begin(), rejoin.end(), anchor) == rejoin.end())
        rejoin.push_back(anchor);
  }

  // Replaying happened "during the outage"; the network join waits out the
  // modeled recovery time. The generation token keeps a crash scheduled in
  // the gap from resurrecting a stale start.
  const std::uint64_t gen = generation_;
  network_.loop().schedule(out.resume_delay, [this, gen, rejoin] {
    if (gen == generation_ && !running_) start(rejoin);
  });
  return out;
}

void FullNode::start(const std::vector<NodeId>& bootstrap) {
  running_ = true;
  if (tracer_ != nullptr) tracer_->instant("node", "start", lane_);
  bootstrap_ = bootstrap;
  // a restart after a crash begins with a clean slate: half-open sessions
  // and in-flight fetches from the previous life are meaningless
  peers_.reset();
  pending_fetch_.clear();
  peer_first_seen_.clear();
  last_head_change_time_ = network_.loop().now();
  eclipse_suspected_ = false;
  network_.attach(id_, [this](const NodeId& from, const Bytes& wire) {
    on_message(from, wire);
  });
  discovery_.bootstrap(bootstrap);
  const std::uint64_t gen = generation_;
  network_.loop().schedule(options_.tick_interval, [this, gen] {
    if (gen == generation_) tick();
  });
}

void FullNode::shutdown() {
  if (!running_) return;
  running_ = false;
  if (tracer_ != nullptr) tracer_->instant("node", "stop", lane_);
  ++generation_;
  network_.detach(id_);
}

void FullNode::tick() {
  if (!running_) return;
  // reap sessions whose handshake got lost on the wire (allow ~3 ticks)
  peers_.reap_stalled(3);
  // a node that lost everyone re-seeds from its bootstrap list
  if (discovery_.known_nodes() == 0 && !bootstrap_.empty())
    discovery_.bootstrap(bootstrap_);
  if (options_.eclipse.enabled) eclipse_tick();
  // top up peer sessions from the routing table
  if (peers_.active_count() < options_.target_peers) {
    for (const NodeId& candidate :
         discovery_.table().closest(id_, options_.target_peers * 2)) {
      if (peers_.connected_to(candidate)) continue;
      if (options_.eclipse.enabled && dial_over_group_cap(candidate))
        continue;
      if (peers_.connect(candidate)) {
        ++dial_attempts_;
        obs::inc(tm_dials_);
      }
      if (peers_.session_count() >= options_.max_peers) break;
    }
    if (rng_.chance(0.5)) discovery_.refresh();
  }
  // anti-entropy: re-advertise our head to one random active peer each
  // tick. Push gossip is fire-and-forget, so on a lossy network a node can
  // miss every announcement of the final block and stall forever once
  // mining stops; this periodic re-offer gives it a pull path (the
  // receiver ignores hashes it already has).
  if (chain_.height() > 0) {
    const std::vector<p2p::NodeId> active = peers_.active_peers();
    if (!active.empty()) {
      const p2p::NodeId& target = active[rng_.uniform(active.size())];
      send(target, Message{NewBlockHashes{{chain_.head().hash()}}});
    }
  }
  const std::uint64_t gen = generation_;
  network_.loop().schedule(options_.tick_interval, [this, gen] {
    if (gen == generation_) tick();
  });
}

void FullNode::eclipse_tick() {
  // age ping-before-evict challenges and feelers
  discovery_.maintain();
  // feeler dial: ping one random table entry; silence gets it removed, so
  // poisoned entries that never answer are gradually flushed
  if (rng_.chance(options_.eclipse.feeler_chance)) {
    const std::vector<NodeId> known = discovery_.table().all();
    if (!known.empty()) discovery_.send_feeler(known[rng_.uniform(known.size())]);
  }
  update_anchors();
  check_isolation();
}

bool FullNode::dial_over_group_cap(const NodeId& candidate) const {
  if (options_.eclipse.dial_group_cap == 0 || !region_fn_) return false;
  const std::uint32_t group = region_fn_(candidate);
  std::size_t same = 0;
  for (const NodeId& id : peers_.session_ids())
    if (region_fn_(id) == group) ++same;
  return same >= options_.eclipse.dial_group_cap;
}

double FullNode::peer_homogeneity() const {
  if (!region_fn_) return 0.0;
  const std::vector<NodeId> active = peers_.active_peers();
  if (active.empty()) return 0.0;
  std::unordered_map<std::uint32_t, std::size_t> counts;
  std::size_t worst = 0;
  for (const NodeId& peer : active)
    worst = std::max(worst, ++counts[region_fn_(peer)]);
  return static_cast<double>(worst) / static_cast<double>(active.size());
}

void FullNode::check_isolation() {
  const auto& e = options_.eclipse;
  if (eclipse_suspected_ || !region_fn_) return;
  if (network_.loop().now() - last_head_change_time_ < e.stale_after) return;
  if (peers_.active_count() < e.min_peers_for_detection) return;
  const double homogeneity = peer_homogeneity();
  if (homogeneity + 1e-9 < e.homogeneity_threshold) return;
  // Stale head + a near-monoculture peer set: everything we hear comes
  // from one place, which honest topology never produces. One-shot until
  // the head moves again.
  eclipse_suspected_ = true;
  ++eclipse_suspicions_;
  bump_defense(tm_eclipse_suspicions_, "node.eclipse.suspicions");
  if (tracer_ != nullptr)
    tracer_->instant(
        "eclipse", "suspicion", lane_,
        {{"peers", static_cast<std::int64_t>(peers_.active_count())},
         {"homogeneity_pct",
          static_cast<std::int64_t>(homogeneity * 100.0)}});
  recover_from_eclipse();
}

void FullNode::recover_from_eclipse() {
  ++eclipse_recoveries_;
  bump_defense(tm_eclipse_recoveries_, "node.eclipse.recoveries");
  if (tracer_ != nullptr) tracer_->instant("eclipse", "recovery", lane_);
  // Drop every session — disconnect, never ban: a suspicion is not proof
  // of guilt against any individual peer, and honest peers caught in the
  // set must be redialable immediately.
  for (const NodeId& peer : peers_.session_ids())
    peers_.disconnect(peer, DisconnectReason::kUselessPeer);
  // The table is presumed poisoned: rebuild from scratch rather than
  // repair in place, seeding from the configured bootstrap list plus any
  // anchors not already in it.
  discovery_.flush();
  std::vector<NodeId> seeds = bootstrap_;
  for (const NodeId& anchor : anchors_)
    if (std::find(seeds.begin(), seeds.end(), anchor) == seeds.end())
      seeds.push_back(anchor);
  discovery_.bootstrap(seeds);
}

void FullNode::update_anchors() {
  const auto& e = options_.eclipse;
  if (e.anchor_count == 0) return;
  // anchors = the longest-lived currently-active peers, oldest first
  std::vector<std::pair<double, NodeId>> aged;
  for (const NodeId& peer : peers_.active_peers()) {
    auto it = peer_first_seen_.find(peer);
    if (it != peer_first_seen_.end()) aged.emplace_back(it->second, peer);
  }
  std::sort(aged.begin(), aged.end());
  if (aged.size() > e.anchor_count) aged.resize(e.anchor_count);
  std::vector<NodeId> next;
  next.reserve(aged.size());
  for (const auto& [_, peer] : aged) next.push_back(peer);
  if (next == anchors_) return;
  anchors_ = std::move(next);
  if (store_ != nullptr) store_->save_anchors(anchors_);
}

void FullNode::send(const NodeId& to, const Message& msg) {
  network_.send(id_, to, encode_message(msg));
}

void FullNode::on_message(const NodeId& from, const Bytes& wire) {
  if (!running_) return;
  auto msg = decode_message(wire);
  if (!msg) {
    peers_.note_garbage(from);  // malformed: count against the sender
    return;
  }
  peers_.touch(from);
  if (discovery_.handle(from, *msg)) return;
  if (peers_.handle(from, *msg)) return;
  // eth payloads require an active session
  const PeerSession* session = peers_.session(from);
  if (session == nullptr || session->state != PeerState::kActive) return;
  handle_eth(from, *msg);
}

Status FullNode::make_status() const {
  Status s;
  s.network_id = chain_.config().chain_id;
  s.total_difficulty = chain_.head_total_difficulty();
  s.head_hash = chain_.head().hash();
  s.genesis_hash = chain_.genesis().hash();
  s.head_number = chain_.height();
  return s;
}

std::optional<core::BlockHeader> FullNode::dao_header() const {
  const auto& config = chain_.config();
  if (!options_.enable_dao_challenge) return std::nullopt;
  if (!config.dao_fork_block) return std::nullopt;
  const core::Block* b = chain_.block_by_number(*config.dao_fork_block);
  if (b == nullptr) return std::nullopt;
  return b->header;
}

bool FullNode::check_dao_header(
    const std::optional<core::BlockHeader>& header) const {
  const auto& config = chain_.config();
  if (!config.dao_fork_block) return true;
  if (!header) return true;  // peer hasn't reached the fork yet
  if (header->number != *config.dao_fork_block) return false;
  const bool has_marker = header->extra_data == core::dao_fork_extra_data();
  return has_marker == config.dao_fork_support;
}

void FullNode::on_peer_active(const NodeId& peer, const Status& status) {
  init_session_buckets(peer);
  if (options_.eclipse.enabled)
    peer_first_seen_.try_emplace(peer, network_.loop().now());
  // start syncing if the peer's chain is heavier
  if (status.total_difficulty > chain_.head_total_difficulty())
    request_blocks(peer, status.head_hash,
                   static_cast<std::uint32_t>(options_.sync_batch));
}

void FullNode::init_session_buckets(const NodeId& peer) {
  if (!hardened()) return;
  PeerSession* s = peers_.session(peer);
  if (s == nullptr) return;
  const auto& h = options_.hardening;
  const SimTime t = network_.loop().now();
  s->block_bucket = TokenBucket{h.blocks_per_sec, h.block_burst,
                                h.block_burst, t};
  s->tx_bucket = TokenBucket{h.txs_per_sec, h.tx_burst, h.tx_burst, t};
}

bool FullNode::precheck_block(const core::Block& block) const {
  const core::BlockHeader& h = block.header;
  if (h.extra_data.size() > 32) return false;
  if (block.ommers.size() > core::Blockchain::kMaxOmmers) return false;
  if (block.transactions.size() > 1024) return false;
  if (h.gas_used > h.gas_limit) return false;
  if (h.difficulty.is_zero()) return false;
  return true;
}

void FullNode::note_import_reject(const Hash256& hash,
                                  core::ImportResult result) {
  mark_rejected(hash);
  if (result == core::ImportResult::kInvalidBody) {
    // the body ran through full transaction execution before a commitment
    // (state root / receipts / gas) failed — work the forger wasted
    ++wasted_executions_;
    bump_defense(tm_wasted_, "node.wasted_executions");
  }
}

void FullNode::mark_rejected(const Hash256& hash) {
  if (!rejected_.insert(hash).second) return;
  rejected_order_.push_back(hash);
  while (rejected_order_.size() > 4096) {
    rejected_.erase(rejected_order_.front());
    rejected_order_.pop_front();
  }
}

void FullNode::note_disputed(const core::BlockHeader& header,
                             const Hash256& hash) {
  if (!disputed_hashes_.insert(hash).second) return;
  disputed_order_.push_back(hash);
  disputed_headers_.emplace(hash, header);
  while (disputed_order_.size() > 4096) {
    disputed_hashes_.erase(disputed_order_.front());
    disputed_headers_.erase(disputed_order_.front());
    disputed_order_.pop_front();
  }
  ++disputed_blocks_;
  bump_defense(tm_disputed_, "node.fork_monitor.disputed_blocks");
  if (disputed_.count == 0) {
    disputed_.min_number = header.number;
    disputed_.max_number = header.number;
    disputed_.tip = hash;
  } else {
    disputed_.min_number = std::min(disputed_.min_number, header.number);
    if (header.number >= disputed_.max_number) {
      disputed_.max_number = header.number;
      disputed_.tip = hash;
    }
  }
  ++disputed_.count;
  // Persistent competing head, not a transient race: raise `divergence`
  // once. The node keeps following the branch header-only — no execution,
  // no blame — until a consensus patch resolves which rules were right.
  if (!disputed_.divergence_raised &&
      disputed_.count >= options_.divergence_threshold) {
    disputed_.divergence_raised = true;
    ++divergence_events_;
    bump_defense(tm_divergence_, "node.fork_monitor.divergence_events");
    if (tracer_ != nullptr)
      tracer_->instant(
          "fork_monitor", "divergence", lane_,
          {{"min", static_cast<std::int64_t>(disputed_.min_number)},
           {"max", static_cast<std::int64_t>(disputed_.max_number)}});
  }
}

void FullNode::apply_consensus_patch() {
  ++consensus_patches_;
  bump_defense(tm_patches_, "node.fork_monitor.consensus_patches");
  if (tracer_ != nullptr)
    tracer_->instant(
        "fork_monitor", "patch", lane_,
        {{"disputed", static_cast<std::int64_t>(disputed_.count)}});
  const DisputedRange range = disputed_;
  // Forget the dispute entirely (unlike rejected_, which is permanent):
  // the formerly-disputed hashes must be fetchable again so full
  // revalidation — and the deep reorg back to the majority chain — can run.
  disputed_hashes_.clear();
  disputed_order_.clear();
  disputed_headers_.clear();
  disputed_ = DisputedRange{};
  if (range.count == 0 || !running_) return;
  const std::vector<NodeId> active = peers_.active_peers();
  if (active.empty()) return;  // the anti-entropy tick will pull us back
  // Pull the whole formerly-disputed branch from one active peer;
  // pending_fetch_ dedups concurrent asks, timeouts retry elsewhere, and
  // the still_orphaned deepening in the Blocks handler extends the window
  // if the branch outgrew what we tracked.
  const std::uint64_t span = range.max_number - range.min_number + 1;
  const std::uint32_t want = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(span + options_.sync_batch, 256));
  request_blocks(active[rng_.uniform(active.size())], range.tip, want);
}

void FullNode::request_blocks(const NodeId& peer, const Hash256& head,
                              std::uint32_t count) {
  if (chain_.contains(head) || rejected_.contains(head) ||
      disputed_hashes_.contains(head))
    return;
  // Backpressure: the in-flight table is bounded so an announcement flood
  // of never-resolving hashes can't grow it (and its timer population)
  // without limit. Honest sync needs a handful of entries.
  if (!pending_fetch_.contains(head) && pending_fetch_.size() >= 4096) return;
  auto [it, inserted] = pending_fetch_.try_emplace(head);
  PendingFetch& req = it->second;
  if (!inserted) {
    // already in flight; just widen the window if this ask is bigger
    req.max_blocks = std::max(req.max_blocks, count);
    return;
  }
  req.peer = peer;
  req.origin = peer;
  req.max_blocks = count;
  req.token = ++next_fetch_token_;
  send(peer, Message{GetBlocks{head, req.max_blocks}});
  arm_fetch_timer(head, req.token, options_.sync_timeout);
}

void FullNode::arm_fetch_timer(const Hash256& head, std::uint64_t token,
                               double timeout) {
  const std::uint64_t gen = generation_;
  network_.loop().schedule(timeout, [this, head, token, gen] {
    if (gen == generation_) on_fetch_timeout(head, token);
  });
}

void FullNode::on_fetch_timeout(const Hash256& head, std::uint64_t token) {
  auto it = pending_fetch_.find(head);
  if (it == pending_fetch_.end() || it->second.token != token) return;
  if (chain_.contains(head)) {  // satisfied via another path (push gossip)
    pending_fetch_.erase(it);
    return;
  }
  ++sync_timeouts_;
  obs::inc(tm_sync_timeouts_);
  if (tracer_ != nullptr) tracer_->instant("sync", "timeout", lane_);
  PendingFetch& req = it->second;
  peers_.note_timeout(req.peer);
  if (req.attempt >= options_.sync_max_retries) {
    ++sync_gave_up_;
    obs::inc(tm_sync_gave_up_);
    if (tracer_ != nullptr) tracer_->instant("sync", "gave_up", lane_);
    pending_fetch_.erase(it);
    return;
  }
  if (hardened()) {
    // Inventory-aware retry: only ask peers that also advertised the hash.
    // The un-hardened path sprays retries across random peers, which a
    // withholder weaponizes — every phantom announcement makes the victim
    // hand out note_timeout demerits to innocent neighbours. If nobody else
    // ever advertised it, the announcement was a phantom: charge the
    // announcer and stop chasing it.
    std::vector<NodeId> informed;
    for (const NodeId& p : peers_.active_peers()) {
      if (p == req.peer) continue;
      const PeerSession* s = peers_.session(p);
      if (s != nullptr && s->knows(head)) informed.push_back(p);
    }
    if (informed.empty()) {
      ++withheld_;
      bump_defense(tm_withheld_, "node.ingress.withheld");
      if (peers_.session(req.origin) != nullptr)
        peers_.note_garbage(req.origin);
      ++sync_gave_up_;
      obs::inc(tm_sync_gave_up_);
      if (tracer_ != nullptr) tracer_->instant("sync", "gave_up", lane_);
      pending_fetch_.erase(it);
      return;
    }
    req.peer = informed[rng_.uniform(informed.size())];
  } else {
    // re-request, preferring a different active peer than the one that
    // failed us; with nobody else around, retry the same peer if its
    // session survived, else give up until a new peer activates
    std::vector<NodeId> candidates = peers_.active_peers();
    std::erase(candidates, req.peer);
    if (!candidates.empty()) {
      req.peer = candidates[rng_.uniform(candidates.size())];
    } else if (peers_.session(req.peer) == nullptr) {
      pending_fetch_.erase(it);
      return;
    }
  }
  ++req.attempt;
  ++sync_retries_;
  obs::inc(tm_sync_retries_);
  if (tracer_ != nullptr)
    tracer_->instant("sync", "retry", lane_,
                     {{"attempt", static_cast<std::int64_t>(req.attempt)}});
  req.token = ++next_fetch_token_;
  send(req.peer, Message{GetBlocks{head, req.max_blocks}});
  arm_fetch_timer(head, req.token,
                  options_.sync_timeout *
                      std::pow(options_.sync_backoff, req.attempt));
}

void FullNode::resolve_fetch(const Hash256& hash) {
  pending_fetch_.erase(hash);
}

void FullNode::handle_eth(const NodeId& from, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        PeerSession* session = peers_.session(from);

        if constexpr (std::is_same_v<T, NewBlock>) {
          const Hash256 hash = m.block.hash();
          if (session) session->mark_known(hash);
          // Staged ingress (hardening only): known-invalid cache, then the
          // per-peer rate limit, then cheap structural checks, then the
          // equivocation detector — each stage rejects before the next one
          // spends anything, and full execution only runs inside import.
          if (hardened() && session != nullptr) {
            if (rejected_.contains(hash)) {
              ++invalid_cache_hits_;
              bump_defense(tm_cache_hits_, "node.ingress.invalid_cache_hits");
              peers_.note_garbage(from);  // re-pushing a block we rejected
              return;
            }
            if (!session->block_bucket.take(network_.loop().now())) {
              ++rate_limited_;
              bump_defense(tm_rate_limited_, "node.ingress.rate_limited");
              peers_.note_spam(from);
              return;
            }
            if (!precheck_block(m.block)) {
              ++precheck_rejections_;
              bump_defense(tm_precheck_, "node.ingress.precheck_rejected");
              mark_rejected(hash);
              peers_.note_garbage(from);
              return;
            }
            if (session->note_child(m.block.header.parent_hash, hash) >=
                options_.hardening.equivocation_threshold) {
              ++equivocations_;
              bump_defense(tm_equivocations_, "node.ingress.equivocations");
              peers_.note_garbage(from);
              return;
            }
          }
          if (chain_.contains(hash)) {
            ++duplicate_block_pushes_;
            obs::inc(tm_dup_push_);
          }
          resolve_fetch(hash);
          if (disputed_hashes_.contains(hash)) return;  // header-followed
          import_and_relay(from, m.block);
        } else if constexpr (std::is_same_v<T, NewBlockHashes>) {
          if (hardened() && session != nullptr &&
              !session->block_bucket.take(
                  network_.loop().now(),
                  static_cast<double>(m.hashes.size()))) {
            ++rate_limited_;
            bump_defense(tm_rate_limited_, "node.ingress.rate_limited");
            peers_.note_spam(from);
            return;
          }
          for (const Hash256& h : m.hashes) {
            if (session) session->mark_known(h);
            if (hardened() && rejected_.contains(h)) {
              // never re-fetch a hash our rules already condemned
              ++invalid_cache_hits_;
              bump_defense(tm_cache_hits_, "node.ingress.invalid_cache_hits");
              continue;
            }
            if (!chain_.contains(h)) request_blocks(from, h, 1);
          }
        } else if constexpr (std::is_same_v<T, GetBlocks>) {
          // serve at most 256 blocks per request regardless of what was
          // asked — honest sync batches are 32, so only a resource-
          // exhaustion request ever sees the clamp
          const std::uint32_t serve_limit =
              std::min<std::uint32_t>(m.max_blocks, 256u);
          Blocks reply;
          Hash256 cursor = m.head;
          while (reply.blocks.size() < serve_limit) {
            const core::Block* b = chain_.block_by_hash(cursor);
            if (b == nullptr) break;
            reply.blocks.push_back(*b);
            if (b->header.number == 0) break;
            cursor = b->header.parent_hash;
          }
          // oldest first so the receiver can import in order
          std::reverse(reply.blocks.begin(), reply.blocks.end());
          if (!reply.blocks.empty()) send(from, Message{std::move(reply)});
        } else if constexpr (std::is_same_v<T, Blocks>) {
          bool still_orphaned = false;
          bool wrong_fork = false;
          bool useful = false;
          bool garbage = false;
          Hash256 deepest_missing;
          // a reply that matches one of our in-flight fetches is solicited:
          // its orphans are sync state, not flood fodder
          bool solicited = false;
          for (const core::Block& b : m.blocks)
            if (pending_fetch_.contains(b.hash())) {
              solicited = true;
              break;
            }
          // replies we asked for are exempt from the rate limit — deep sync
          // legitimately delivers large batches in bursts
          if (hardened() && session != nullptr && !solicited &&
              !session->block_bucket.take(
                  network_.loop().now(),
                  static_cast<double>(m.blocks.size()))) {
            ++rate_limited_;
            bump_defense(tm_rate_limited_, "node.ingress.rate_limited");
            peers_.note_spam(from);
            return;
          }
          for (const core::Block& b : m.blocks) {
            const Hash256 hash = b.hash();
            if (session) session->mark_known(hash);
            resolve_fetch(hash);
            if (disputed_hashes_.contains(hash)) continue;  // header-followed
            if (hardened()) {
              if (rejected_.contains(hash)) {
                ++invalid_cache_hits_;
                bump_defense(tm_cache_hits_,
                             "node.ingress.invalid_cache_hits");
                garbage = true;
                continue;  // absorbed: no re-validation, no re-execution
              }
              if (!precheck_block(b)) {
                ++precheck_rejections_;
                bump_defense(tm_precheck_, "node.ingress.precheck_rejected");
                mark_rejected(hash);
                garbage = true;
                continue;
              }
            }
            const auto outcome = import_block(b);
            if (outcome.result == core::ImportResult::kImported) {
              ++blocks_imported_;
              obs::inc(tm_imported_);
              useful = true;
              if (outcome.became_head) after_head_change();
            } else if (outcome.result == core::ImportResult::kUnknownParent) {
              if (disputed_hashes_.contains(b.header.parent_hash)) {
                // a descendant of a block our rules dispute: follow the
                // branch header-only instead of orphaning and chasing
                // ancestors we would refuse to execute anyway
                note_disputed(b.header, hash);
                continue;
              }
              add_orphan(b, solicited);
              if (!still_orphaned) {
                still_orphaned = true;
                deepest_missing = b.header.parent_hash;
              }
            } else if (outcome.result == core::ImportResult::kWrongFork) {
              wrong_fork = true;
              mark_rejected(hash);
            } else if (outcome.result == core::ImportResult::kDisputed) {
              // validity disagreement with an honest peer — degrade to
              // header-only following; emphatically NOT garbage (this path
              // must never feed the ban machinery)
              note_disputed(b.header, hash);
            } else if (outcome.result != core::ImportResult::kAlreadyKnown) {
              garbage = true;  // structurally invalid block
              note_import_reject(hash, outcome.result);
            }
          }
          try_orphans();
          if (wrong_fork && options_.drop_wrong_fork_peers) {
            // the peer served the other side's fork block: sever the link
            peers_.disconnect(from, DisconnectReason::kWrongFork);
            return;
          }
          if (useful) peers_.note_useful(from);
          if (garbage) peers_.note_garbage(from);
          if (still_orphaned && !chain_.contains(deepest_missing)) {
            // deepen the sync window
            request_blocks(from, deepest_missing,
                           static_cast<std::uint32_t>(options_.sync_batch));
          }
        } else if constexpr (std::is_same_v<T, Transactions>) {
          if (hardened() && session != nullptr &&
              !session->tx_bucket.take(
                  network_.loop().now(),
                  static_cast<double>(m.transactions.size()))) {
            ++rate_limited_;
            bump_defense(tm_rate_limited_, "node.ingress.rate_limited");
            peers_.note_spam(from);
            return;
          }
          std::vector<core::Transaction> fresh;
          std::size_t junk = 0;
          for (const core::Transaction& tx : m.transactions) {
            if (session) session->mark_known(tx.hash());
            const auto result =
                pool_.add(tx, chain_.head_state(), chain_.height());
            ++txs_received_;
            obs::inc(tm_txs_);
            if (result == core::PoolAddResult::kAdded ||
                result == core::PoolAddResult::kReplacedExisting)
              fresh.push_back(tx);
            // hard rejects only: duplicates and nonce races happen between
            // honest gossipers, piles of invalid transactions do not
            if (result == core::PoolAddResult::kInvalidSignature ||
                result == core::PoolAddResult::kWrongChainId ||
                result == core::PoolAddResult::kUnderpriced)
              ++junk;
          }
          if (hardened() && junk >= options_.hardening.tx_junk_threshold)
            peers_.note_garbage(from);  // a spam batch, not a gossip race
          if (!fresh.empty()) relay_transactions(fresh, from);
        } else {
          // discovery / session messages never reach here
        }
      },
      msg);
}

void FullNode::import_and_relay(const NodeId& from, const core::Block& block) {
  const auto outcome = import_block(block);
  switch (outcome.result) {
    case core::ImportResult::kImported: {
      ++blocks_imported_;
      obs::inc(tm_imported_);
      peers_.note_useful(from);
      pool_.remove_included(block.transactions, chain_.head_state());
      relay_block(block, outcome.became_head);
      try_orphans();
      if (outcome.became_head) after_head_change();
      break;
    }
    case core::ImportResult::kUnknownParent: {
      if (disputed_hashes_.contains(block.header.parent_hash)) {
        // extends a branch our rules dispute: header-only follow, don't
        // chase ancestors we'd refuse to execute
        note_disputed(block.header, block.hash());
        break;
      }
      add_orphan(block, /*solicited=*/false);
      request_blocks(from, block.header.parent_hash,
                     static_cast<std::uint32_t>(options_.sync_batch));
      break;
    }
    case core::ImportResult::kWrongFork:
      // a peer pushing the other side's fork block is on the other network
      mark_rejected(block.hash());
      if (options_.drop_wrong_fork_peers)
        peers_.disconnect(from, DisconnectReason::kWrongFork);
      break;
    case core::ImportResult::kDisputed:
      // an honest peer on the other side of a consensus bug: track the
      // competing head, no demerit, no disconnect (the friendly-fire
      // failure mode the fork monitor exists to prevent)
      note_disputed(block.header, block.hash());
      break;
    case core::ImportResult::kAlreadyKnown:
      break;
    default:
      note_import_reject(block.hash(), outcome.result);
      peers_.note_garbage(from);  // structurally invalid push
      break;
  }
}

void FullNode::after_head_change() {
  // head progress is the isolation detector's liveness signal: it both
  // resets the staleness clock and re-arms the one-shot suspicion
  last_head_change_time_ = network_.loop().now();
  eclipse_suspected_ = false;
  // crossing the fork height: cross-examine every existing peer once, the
  // way geth re-checked established sessions when the DAO fork activated
  const auto& config = chain_.config();
  if (options_.enable_dao_challenge && !rechallenged_at_fork_ &&
      config.dao_fork_block && chain_.height() >= *config.dao_fork_block) {
    rechallenged_at_fork_ = true;
    for (const NodeId& peer : peers_.active_peers())
      peers_.rechallenge(peer);
  }
  if (tracer_ != nullptr)
    tracer_->instant(
        "chain", "head", lane_,
        {{"height", static_cast<std::int64_t>(chain_.height())}});
  if (on_head_changed) on_head_changed();
}

void FullNode::update_orphan_gauge() {
  obs::set(tm_orphan_occ_, static_cast<double>(orphan_order_.size()));
}

void FullNode::add_orphan(const core::Block& block, bool solicited) {
  const Hash256 hash = block.hash();
  auto& bucket = orphans_[block.header.parent_hash];
  for (const core::Block& b : bucket)
    if (b.hash() == hash) return;  // duplicate orphan
  bucket.push_back(block);
  orphan_order_.push_back(
      OrphanRef{block.header.parent_hash, hash, solicited});
  while (orphan_order_.size() > options_.max_orphans) {
    // evict the oldest unsolicited orphan (flood fodder) before touching
    // sync state; fall back to the overall oldest if everything was asked
    // for
    auto victim_it = std::find_if(
        orphan_order_.begin(), orphan_order_.end(),
        [](const OrphanRef& r) { return !r.solicited; });
    if (victim_it == orphan_order_.end()) victim_it = orphan_order_.begin();
    const OrphanRef victim = *victim_it;
    orphan_order_.erase(victim_it);
    ++orphan_evictions_;
    obs::inc(tm_orphan_evict_);
    auto it = orphans_.find(victim.parent);
    if (it == orphans_.end()) continue;  // bucket already imported/evicted
    std::erase_if(it->second,
                  [&](const core::Block& b) { return b.hash() == victim.hash; });
    if (it->second.empty()) orphans_.erase(it);
  }
  update_orphan_gauge();
}

void FullNode::try_orphans() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (!chain_.contains(it->first)) {
        ++it;
        continue;
      }
      const Hash256 parent = it->first;
      const std::vector<core::Block> children = std::move(it->second);
      it = orphans_.erase(it);
      std::erase_if(orphan_order_,
                    [&](const OrphanRef& r) { return r.parent == parent; });
      for (const core::Block& block : children) {
        const auto outcome = import_block(block);
        if (outcome.result == core::ImportResult::kImported) {
          ++blocks_imported_;
          obs::inc(tm_imported_);
          relay_block(block, outcome.became_head);
          if (outcome.became_head) after_head_change();
          progress = true;
        } else if (outcome.result == core::ImportResult::kDisputed) {
          // an orphan our rules dispute now that its parent arrived:
          // header-only follow, no blame
          note_disputed(block.header, block.hash());
        } else if (outcome.result != core::ImportResult::kAlreadyKnown &&
                   outcome.result != core::ImportResult::kUnknownParent) {
          // an orphan that turned out invalid once its parent arrived (a
          // forger building on a real ancestor); cache it so re-sends are
          // absorbed without another execution
          note_import_reject(block.hash(), outcome.result);
        }
      }
    }
  }
  update_orphan_gauge();
}

void FullNode::relay_block(const core::Block& block, bool became_head) {
  // Hardened nodes only forward blocks that advanced their own head: a
  // flood of valid same-parent siblings (equivocation) dies at the first
  // honest hop instead of being amplified, and the sibling detector can
  // then never fire on an honest relay.
  if (hardened() && !became_head) return;
  const Hash256 hash = block.hash();
  std::vector<NodeId> targets;
  for (const NodeId& peer : peers_.active_peers()) {
    PeerSession* session = peers_.session(peer);
    if (session && !session->knows(hash)) targets.push_back(peer);
  }
  auto [push, announce] =
      split_for_gossip(std::move(targets), options_.gossip, rng_);
  const U256 td = chain_.total_difficulty_of(hash);
  for (const NodeId& peer : push) {
    peers_.session(peer)->mark_known(hash);
    send(peer, Message{NewBlock{block, td}});
  }
  for (const NodeId& peer : announce) {
    peers_.session(peer)->mark_known(hash);
    send(peer, Message{NewBlockHashes{{hash}}});
  }
}

void FullNode::relay_transactions(const std::vector<core::Transaction>& txs,
                                  const std::optional<NodeId>& skip) {
  for (const NodeId& peer : peers_.active_peers()) {
    if (skip && peer == *skip) continue;
    PeerSession* session = peers_.session(peer);
    if (session == nullptr) continue;
    Transactions batch;
    for (const core::Transaction& tx : txs) {
      const Hash256 h = tx.hash();
      if (session->knows(h)) continue;
      session->mark_known(h);
      batch.transactions.push_back(tx);
    }
    if (!batch.transactions.empty()) send(peer, Message{std::move(batch)});
  }
}

core::PoolAddResult FullNode::submit_transaction(const core::Transaction& tx) {
  const auto result = pool_.add(tx, chain_.head_state(), chain_.height());
  if (result == core::PoolAddResult::kAdded ||
      result == core::PoolAddResult::kReplacedExisting)
    relay_transactions({tx}, std::nullopt);
  return result;
}

core::ImportOutcome FullNode::submit_block(const core::Block& block) {
  const auto outcome = import_block(block);
  if (outcome.result == core::ImportResult::kImported) {
    ++blocks_imported_;
    obs::inc(tm_imported_);
    pool_.remove_included(block.transactions, chain_.head_state());
    relay_block(block, outcome.became_head);
    if (outcome.became_head) after_head_change();
  }
  return outcome;
}

}  // namespace forksim::sim
