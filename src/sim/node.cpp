#include "sim/node.hpp"

namespace forksim::sim {

using namespace p2p;

FullNode::FullNode(Network& network, NodeId id, core::ChainConfig config,
                   core::Executor& executor, const core::GenesisAlloc& alloc,
                   Rng rng, NodeOptions options)
    : network_(network),
      id_(id),
      chain_(std::move(config), executor, alloc, options.genesis_gas_limit,
             options.genesis_difficulty),
      pool_(chain_.config()),
      rng_(rng),
      options_(options),
      discovery_(id, rng_.fork(),
                 [this](const NodeId& to, const Message& m) { send(to, m); }),
      peers_(chain_.config().chain_id, chain_.genesis().hash(),
             options.max_peers,
             PeerSet::Callbacks{
                 [this](const NodeId& to, const Message& m) { send(to, m); },
                 [this] { return make_status(); },
                 [this] { return dao_header(); },
                 [this](const std::optional<core::BlockHeader>& h) {
                   return check_dao_header(h);
                 },
                 [this](const NodeId& peer, const Status& status) {
                   on_peer_active(peer, status);
                 },
                 [this](const NodeId& peer, DisconnectReason reason) {
                   // discovery is fork-agnostic (paper §2.2: Kademlia is
                   // not part of consensus) — only evict peers on a truly
                   // different network; wrong-fork and stalled peers stay
                   // in the table, exactly as on mainnet
                   if (reason == DisconnectReason::kIncompatibleNetwork)
                     discovery_.on_peer_dead(peer);
                 },
             }) {
  discovery_.set_on_discovered([this](const NodeId& candidate) {
    if (running_ && peers_.active_count() < options_.target_peers)
      peers_.connect(candidate);
  });
}

FullNode::~FullNode() { shutdown(); }

void FullNode::start(const std::vector<NodeId>& bootstrap) {
  running_ = true;
  bootstrap_ = bootstrap;
  network_.attach(id_, [this](const NodeId& from, const Bytes& wire) {
    on_message(from, wire);
  });
  discovery_.bootstrap(bootstrap);
  const std::uint64_t gen = generation_;
  network_.loop().schedule(options_.tick_interval, [this, gen] {
    if (gen == generation_) tick();
  });
}

void FullNode::shutdown() {
  if (!running_) return;
  running_ = false;
  ++generation_;
  network_.detach(id_);
}

void FullNode::tick() {
  if (!running_) return;
  // reap sessions whose handshake got lost on the wire (allow ~3 ticks)
  peers_.reap_stalled(3);
  // a node that lost everyone re-seeds from its bootstrap list
  if (discovery_.known_nodes() == 0 && !bootstrap_.empty())
    discovery_.bootstrap(bootstrap_);
  // top up peer sessions from the routing table
  if (peers_.active_count() < options_.target_peers) {
    for (const NodeId& candidate :
         discovery_.table().closest(id_, options_.target_peers * 2)) {
      if (peers_.connected_to(candidate)) continue;
      peers_.connect(candidate);
      if (peers_.session_count() >= options_.max_peers) break;
    }
    if (rng_.chance(0.5)) discovery_.refresh();
  }
  const std::uint64_t gen = generation_;
  network_.loop().schedule(options_.tick_interval, [this, gen] {
    if (gen == generation_) tick();
  });
}

void FullNode::send(const NodeId& to, const Message& msg) {
  network_.send(id_, to, encode_message(msg));
}

void FullNode::on_message(const NodeId& from, const Bytes& wire) {
  if (!running_) return;
  auto msg = decode_message(wire);
  if (!msg) return;  // malformed: ignore (a real node would disconnect)
  if (discovery_.handle(from, *msg)) return;
  if (peers_.handle(from, *msg)) return;
  // eth payloads require an active session
  const PeerSession* session = peers_.session(from);
  if (session == nullptr || session->state != PeerState::kActive) return;
  handle_eth(from, *msg);
}

Status FullNode::make_status() const {
  Status s;
  s.network_id = chain_.config().chain_id;
  s.total_difficulty = chain_.head_total_difficulty();
  s.head_hash = chain_.head().hash();
  s.genesis_hash = chain_.genesis().hash();
  s.head_number = chain_.height();
  return s;
}

std::optional<core::BlockHeader> FullNode::dao_header() const {
  const auto& config = chain_.config();
  if (!options_.enable_dao_challenge) return std::nullopt;
  if (!config.dao_fork_block) return std::nullopt;
  const core::Block* b = chain_.block_by_number(*config.dao_fork_block);
  if (b == nullptr) return std::nullopt;
  return b->header;
}

bool FullNode::check_dao_header(
    const std::optional<core::BlockHeader>& header) const {
  const auto& config = chain_.config();
  if (!config.dao_fork_block) return true;
  if (!header) return true;  // peer hasn't reached the fork yet
  if (header->number != *config.dao_fork_block) return false;
  const bool has_marker = header->extra_data == core::dao_fork_extra_data();
  return has_marker == config.dao_fork_support;
}

void FullNode::on_peer_active(const NodeId& peer, const Status& status) {
  // start syncing if the peer's chain is heavier
  if (status.total_difficulty > chain_.head_total_difficulty())
    send(peer, Message{GetBlocks{
                   status.head_hash,
                   static_cast<std::uint32_t>(options_.sync_batch)}});
}

void FullNode::handle_eth(const NodeId& from, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        PeerSession* session = peers_.session(from);

        if constexpr (std::is_same_v<T, NewBlock>) {
          if (session) session->mark_known(m.block.hash());
          if (chain_.contains(m.block.hash())) ++duplicate_block_pushes_;
          import_and_relay(from, m.block);
        } else if constexpr (std::is_same_v<T, NewBlockHashes>) {
          for (const Hash256& h : m.hashes) {
            if (session) session->mark_known(h);
            if (!chain_.contains(h))
              send(from, Message{GetBlocks{h, 1}});
          }
        } else if constexpr (std::is_same_v<T, GetBlocks>) {
          Blocks reply;
          Hash256 cursor = m.head;
          while (reply.blocks.size() < m.max_blocks) {
            const core::Block* b = chain_.block_by_hash(cursor);
            if (b == nullptr) break;
            reply.blocks.push_back(*b);
            if (b->header.number == 0) break;
            cursor = b->header.parent_hash;
          }
          // oldest first so the receiver can import in order
          std::reverse(reply.blocks.begin(), reply.blocks.end());
          if (!reply.blocks.empty()) send(from, Message{std::move(reply)});
        } else if constexpr (std::is_same_v<T, Blocks>) {
          bool still_orphaned = false;
          bool wrong_fork = false;
          Hash256 deepest_missing;
          for (const core::Block& b : m.blocks) {
            if (session) session->mark_known(b.hash());
            const auto outcome = chain_.import(b);
            if (outcome.result == core::ImportResult::kImported) {
              ++blocks_imported_;
              if (outcome.became_head) after_head_change();
            } else if (outcome.result == core::ImportResult::kUnknownParent) {
              orphans_.emplace(b.header.parent_hash, b);
              if (!still_orphaned) {
                still_orphaned = true;
                deepest_missing = b.header.parent_hash;
              }
            } else if (outcome.result == core::ImportResult::kWrongFork) {
              wrong_fork = true;
            }
          }
          try_orphans();
          if (wrong_fork && options_.drop_wrong_fork_peers) {
            // the peer served the other side's fork block: sever the link
            peers_.disconnect(from, DisconnectReason::kWrongFork);
            return;
          }
          if (still_orphaned && !chain_.contains(deepest_missing)) {
            // deepen the sync window
            send(from, Message{GetBlocks{
                           deepest_missing,
                           static_cast<std::uint32_t>(options_.sync_batch)}});
          }
        } else if constexpr (std::is_same_v<T, Transactions>) {
          std::vector<core::Transaction> fresh;
          for (const core::Transaction& tx : m.transactions) {
            if (session) session->mark_known(tx.hash());
            const auto result =
                pool_.add(tx, chain_.head_state(), chain_.height());
            ++txs_received_;
            if (result == core::PoolAddResult::kAdded ||
                result == core::PoolAddResult::kReplacedExisting)
              fresh.push_back(tx);
          }
          if (!fresh.empty()) relay_transactions(fresh, from);
        } else {
          // discovery / session messages never reach here
        }
      },
      msg);
}

void FullNode::import_and_relay(const NodeId& from, const core::Block& block) {
  const auto outcome = chain_.import(block);
  switch (outcome.result) {
    case core::ImportResult::kImported: {
      ++blocks_imported_;
      pool_.remove_included(block.transactions, chain_.head_state());
      relay_block(block);
      try_orphans();
      if (outcome.became_head) after_head_change();
      break;
    }
    case core::ImportResult::kUnknownParent: {
      orphans_.emplace(block.header.parent_hash, block);
      send(from, Message{GetBlocks{
                     block.header.parent_hash,
                     static_cast<std::uint32_t>(options_.sync_batch)}});
      break;
    }
    case core::ImportResult::kWrongFork:
      // a peer pushing the other side's fork block is on the other network
      if (options_.drop_wrong_fork_peers)
        peers_.disconnect(from, DisconnectReason::kWrongFork);
      break;
    default:
      break;  // invalid or duplicate: drop silently
  }
}

void FullNode::after_head_change() {
  // crossing the fork height: cross-examine every existing peer once, the
  // way geth re-checked established sessions when the DAO fork activated
  const auto& config = chain_.config();
  if (options_.enable_dao_challenge && !rechallenged_at_fork_ &&
      config.dao_fork_block && chain_.height() >= *config.dao_fork_block) {
    rechallenged_at_fork_ = true;
    for (const NodeId& peer : peers_.active_peers())
      peers_.rechallenge(peer);
  }
  if (on_head_changed) on_head_changed();
}

void FullNode::try_orphans() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (!chain_.contains(it->first)) {
        ++it;
        continue;
      }
      const core::Block block = it->second;
      it = orphans_.erase(it);
      const auto outcome = chain_.import(block);
      if (outcome.result == core::ImportResult::kImported) {
        ++blocks_imported_;
        relay_block(block);
        if (outcome.became_head) after_head_change();
        progress = true;
      }
    }
  }
}

void FullNode::relay_block(const core::Block& block) {
  const Hash256 hash = block.hash();
  std::vector<NodeId> targets;
  for (const NodeId& peer : peers_.active_peers()) {
    PeerSession* session = peers_.session(peer);
    if (session && !session->knows(hash)) targets.push_back(peer);
  }
  auto [push, announce] =
      split_for_gossip(std::move(targets), options_.gossip, rng_);
  const U256 td = chain_.total_difficulty_of(hash);
  for (const NodeId& peer : push) {
    peers_.session(peer)->mark_known(hash);
    send(peer, Message{NewBlock{block, td}});
  }
  for (const NodeId& peer : announce) {
    peers_.session(peer)->mark_known(hash);
    send(peer, Message{NewBlockHashes{{hash}}});
  }
}

void FullNode::relay_transactions(const std::vector<core::Transaction>& txs,
                                  const std::optional<NodeId>& skip) {
  for (const NodeId& peer : peers_.active_peers()) {
    if (skip && peer == *skip) continue;
    PeerSession* session = peers_.session(peer);
    if (session == nullptr) continue;
    Transactions batch;
    for (const core::Transaction& tx : txs) {
      const Hash256 h = tx.hash();
      if (session->knows(h)) continue;
      session->mark_known(h);
      batch.transactions.push_back(tx);
    }
    if (!batch.transactions.empty()) send(peer, Message{std::move(batch)});
  }
}

core::PoolAddResult FullNode::submit_transaction(const core::Transaction& tx) {
  const auto result = pool_.add(tx, chain_.head_state(), chain_.height());
  if (result == core::PoolAddResult::kAdded ||
      result == core::PoolAddResult::kReplacedExisting)
    relay_transactions({tx}, std::nullopt);
  return result;
}

core::ImportOutcome FullNode::submit_block(const core::Block& block) {
  const auto outcome = chain_.import(block);
  if (outcome.result == core::ImportResult::kImported) {
    ++blocks_imported_;
    pool_.remove_included(block.transactions, chain_.head_state());
    relay_block(block);
    if (outcome.became_head) after_head_change();
  }
  return outcome;
}

}  // namespace forksim::sim
