#include "sim/scenario.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "trie/trie.hpp"

namespace forksim::sim {

namespace {

p2p::NodeId node_id_for(std::uint64_t index) {
  Keccak256 h;
  h.update(std::string_view("forksim/node"));
  const auto be = be_fixed64(index);
  h.update(BytesView(be.data(), be.size()));
  return h.digest();
}

}  // namespace

ForkScenario::ForkScenario(ScenarioParams params)
    : params_(params),
      rng_(params.seed),
      network_(loop_, Rng(params.seed ^ 0x9e3779b97f4a7c15ull),
               params.latency) {
  // pre-fork accounts, funded in genesis on every node
  core::GenesisAlloc alloc;
  for (std::size_t i = 0; i < params_.funded_accounts; ++i) {
    accounts_.push_back(PrivateKey::from_seed(1000 + i));
    alloc.emplace_back(derive_address(accounts_.back()), core::ether(10000));
  }

  const std::size_t total_nodes = params_.nodes_eth + params_.nodes_etc;
  if (params_.num_shards == 0 || params_.num_shards > total_nodes)
    throw std::invalid_argument(
        "ScenarioParams: num_shards (" + std::to_string(params_.num_shards) +
        ") must be in [1, nodes=" + std::to_string(total_nodes) + "]");
  // epoch bound for sharded run_for: the tightest one-way latency floor any
  // link can have — the uniform base, or the smallest geo region-pair RTT/2
  epoch_lookahead_ = std::max(0.0, params_.latency.base);
  if (params_.geo.enabled) {
    double floor = std::numeric_limits<double>::infinity();
    for (const auto& row : params_.geo.rtt)
      for (const double rtt : row) floor = std::min(floor, 0.5 * rtt);
    epoch_lookahead_ = floor;
  }
  const core::ChainConfig eth_config = core::ChainConfig::eth(
      params_.fork_block);
  const core::ChainConfig etc_config =
      core::ChainConfig::etc(params_.fork_block, std::nullopt);

  // Internet-scale wiring (both strictly opt-in: with the flags off, no
  // extra rng draws happen and runs stay draw-for-draw identical to
  // builds without this layer).
  if (params_.topology.enabled)
    topology_ = p2p::generate_topology(params_.topology, total_nodes);
  if (params_.geo.enabled) geo_.emplace(params_.geo, total_nodes);

  // Client-diversity layer (also strictly opt-in): seeded per-node family
  // assignment plus one shared quirk rule set for the buggy family.
  if (params_.clients.enabled) {
    params_.clients.validate();
    client_families_ =
        assign_client_families(params_.clients, total_nodes, rng_);
    quirk_rules_ = std::make_unique<QuirkRuleSet>(
        params_.clients, [this] { return loop_.now(); });
  }

  for (std::size_t i = 0; i < total_nodes; ++i) {
    // Both sides share network id 1 pre-fork (they are the same network —
    // only the fork rule separates them), so use the pre-fork id for the
    // handshake and let the DAO challenge do the separating, as on mainnet.
    core::ChainConfig config = is_eth_node(i) ? eth_config : etc_config;
    config.chain_id = 1;  // devp2p network id stayed 1 for both ETH and ETC
    NodeOptions options = params_.node_options;
    options.genesis_difficulty = params_.genesis_difficulty;
    if (params_.clients.enabled) {
      const ClientProfile profile = profile_for(client_families_[i]);
      options.tick_interval *= profile.tick_multiplier;
      options.gossip.push_exponent *= profile.fanout_multiplier;
    }
    auto node = std::make_unique<FullNode>(
        network_, node_id_for(i), std::move(config), executor_, alloc,
        rng_.fork(), options);
    if (quirk_rules_ != nullptr &&
        client_families_[i] == params_.clients.buggy_family)
      node->set_validation_rules(quirk_rules_.get());
    nodes_.push_back(std::move(node));
  }

  if (geo_) {
    std::unordered_map<p2p::NodeId, std::uint32_t, p2p::NodeIdHasher>
        placement;
    for (std::size_t i = 0; i < total_nodes; ++i)
      placement.emplace(nodes_[i]->id(), static_cast<std::uint32_t>(i));
    network_.set_geo(&*geo_, std::move(placement));
  }

  if (params_.topology.enabled) {
    // bootstrap along the generated graph: each node dials its
    // neighborhood, so the session mesh takes the configured degree shape
    for (std::size_t i = 0; i < total_nodes; ++i) {
      std::vector<p2p::NodeId> boot;
      for (const std::uint32_t nb :
           topology_.neighbors_of(static_cast<std::uint32_t>(i)))
        boot.push_back(nodes_[nb]->id());
      nodes_[i]->start(boot);
    }
  } else {
    // historical wiring: everyone knows the first node (plus one random
    // other) and the mesh emerges from discovery
    std::vector<p2p::NodeId> seeds = {nodes_[0]->id()};
    for (std::size_t i = 0; i < total_nodes; ++i) {
      std::vector<p2p::NodeId> boot = seeds;
      if (i != 0)
        boot.push_back(nodes_[rng_.uniform(i)]->id());  // someone earlier
      nodes_[i]->start(boot);
    }
  }

  // miners: hashrate split per side; ETH-side miners sit on ETH nodes etc.
  const double etc_power =
      params_.total_hashrate * params_.etc_hashpower_fraction;
  const double eth_power = params_.total_hashrate - etc_power;
  std::size_t miner_index = 0;
  for (std::size_t m = 0; m < params_.miners_per_side_eth; ++m) {
    FullNode& host = *nodes_[m % params_.nodes_eth];
    const Address coinbase =
        derive_address(PrivateKey::from_seed(5000 + miner_index++));
    miners_.push_back(std::make_unique<Miner>(
        host, coinbase,
        eth_power / static_cast<double>(params_.miners_per_side_eth),
        rng_.fork()));
  }
  for (std::size_t m = 0; m < params_.miners_per_side_etc; ++m) {
    FullNode& host = *nodes_[params_.nodes_eth + (m % params_.nodes_etc)];
    const Address coinbase =
        derive_address(PrivateKey::from_seed(5000 + miner_index++));
    miners_.push_back(std::make_unique<Miner>(
        host, coinbase,
        etc_power / static_cast<double>(params_.miners_per_side_etc),
        rng_.fork()));
  }
  for (auto& miner : miners_) miner->start();

  // The hotfix: at patch_time the buggy family's quirk disables and every
  // buggy-family node clears its fork monitor and pulls the formerly-
  // disputed branch back for full revalidation (the deep reorg). Scheduled
  // at construction (now == 0), so the delay is the absolute sim time.
  if (quirk_rules_ != nullptr && params_.clients.patch_time >= 0.0) {
    loop_.schedule(params_.clients.patch_time, [this] {
      quirk_rules_->apply_patch();
      for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (client_families_[i] == params_.clients.buggy_family &&
            nodes_[i]->running())
          nodes_[i]->apply_consensus_patch();
    });
  }
}

ForkScenario::~ForkScenario() {
  for (auto& miner : miners_) miner->stop();
  for (auto& node : nodes_) node->shutdown();
}

void ForkScenario::run_for(double seconds) {
  const double deadline = loop_.now() + seconds;
  if (params_.num_shards > 1) {
    const auto st = loop_.run_epochs_until(deadline, epoch_lookahead_);
    epochs_run_ += st.epochs;
  } else {
    loop_.run_until(deadline);
  }
}

p2p::ShardPlan ForkScenario::shard_plan() const {
  p2p::ShardPlan plan;
  plan.num_shards = params_.num_shards;
  plan.lookahead = epoch_lookahead_;
  plan.shard_of.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    plan.shard_of[i] = p2p::ShardPlan::shard_for(i, nodes_.size(),
                                                 params_.num_shards);
  return plan;
}

std::size_t ForkScenario::distinct_heads() const {
  std::unordered_set<Hash256, Hash256Hasher> heads;
  for (const auto& node : nodes_)
    if (node->running()) heads.insert(node->chain().head().hash());
  return heads.size();
}

core::BlockNumber ForkScenario::best_height_eth() const {
  core::BlockNumber best = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (is_eth_node(i) && nodes_[i]->running())
      best = std::max(best, nodes_[i]->chain().height());
  return best;
}

core::BlockNumber ForkScenario::best_height_etc() const {
  core::BlockNumber best = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (!is_eth_node(i) && nodes_[i]->running())
      best = std::max(best, nodes_[i]->chain().height());
  return best;
}

std::size_t ForkScenario::cross_side_links() const {
  std::size_t links = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->running()) continue;
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (is_eth_node(i) == is_eth_node(j)) continue;
      const auto* session = nodes_[i]->peers().session(nodes_[j]->id());
      if (session != nullptr && session->state == p2p::PeerState::kActive)
        ++links;
    }
  }
  return links;
}

std::uint64_t ForkScenario::total_wrong_fork_drops() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->wrong_fork_drops();
  return total;
}

void ForkScenario::attach_telemetry(obs::Registry& reg,
                                    obs::EventTracer* tracer) {
  network_.attach_telemetry(reg);
  executor_.attach_telemetry(reg);
  trie::attach_telemetry(reg);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    FullNode& node = *nodes_[i];
    node.attach_telemetry(reg, tracer, static_cast<std::uint32_t>(i));
    node.chain().attach_telemetry(reg);
    node.txpool().attach_telemetry(reg);
  }
}

}  // namespace forksim::sim
