#include "sim/replay.hpp"

#include <algorithm>
#include <cmath>

namespace forksim::sim {

ReplaySim::ReplaySim(ReplayParams params, Rng rng)
    : params_(params), rng_(rng), accounts_(params.shared_accounts) {
  for (std::size_t i = 0; i < accounts_.size(); ++i) {
    const double u = rng_.uniform01();
    if (u < params_.home_eth) accounts_[i].home = Home::kEth;
    else if (u < params_.home_eth + params_.home_etc)
      accounts_[i].home = Home::kEtc;
    else accounts_[i].home = Home::kBoth;
    if (accounts_[i].home != Home::kEtc) eth_active_.push_back(i);
    if (accounts_[i].home != Home::kEth) etc_active_.push_back(i);
  }
}

double ReplaySim::shared_fraction(double day) const {
  const double decay =
      std::exp2(-day / params_.shared_fraction_half_life_days);
  return params_.shared_fraction_floor +
         (params_.shared_fraction_start - params_.shared_fraction_floor) *
             decay;
}

double ReplaySim::attack_prob(double day) const {
  const double decay = std::exp2(-day / params_.attack_echo_half_life_days);
  return params_.attack_echo_floor +
         (params_.attack_echo_start - params_.attack_echo_floor) * decay;
}

double ReplaySim::protected_fraction(double day, bool on_eth) const {
  const double activation =
      on_eth ? params_.eth_eip155_day : params_.etc_eip155_day;
  if (activation < 0 || day < activation) return 0.0;
  return std::min(params_.eip155_adoption_cap,
                  (day - activation) * params_.eip155_adoption_per_day);
}

std::size_t ReplaySim::replayable_accounts() const {
  std::size_t n = 0;
  for (const auto& a : accounts_)
    if (!a.split && a.nonce_eth == a.nonce_etc) ++n;
  return n;
}

ReplaySim::DayStats ReplaySim::step(double day, std::uint64_t eth_txs,
                                    std::uint64_t etc_txs) {
  DayStats stats;
  stats.eth_txs = eth_txs;
  stats.etc_txs = etc_txs;

  // some owners split their addresses today
  for (auto& a : accounts_)
    if (!a.split && rng_.chance(params_.split_per_day)) a.split = true;

  const double shared = shared_fraction(day);
  const double attack = attack_prob(day);

  auto run_side = [&](std::uint64_t txs, bool on_eth) {
    const double prot = protected_fraction(day, on_eth);
    // expected number of shared-account txs today on this side
    const auto shared_txs = static_cast<std::uint64_t>(
        static_cast<double>(txs) * shared + 0.5);
    const auto& active = on_eth ? eth_active_ : etc_active_;
    if (active.empty()) return;
    for (std::uint64_t i = 0; i < shared_txs; ++i) {
      AccountState& acct = accounts_[active[rng_.uniform(active.size())]];
      if (acct.split) continue;  // split owners sign from fresh addresses

      // the tx executes on the origin chain regardless
      std::uint32_t& origin_nonce = on_eth ? acct.nonce_eth : acct.nonce_etc;
      const std::uint32_t used_nonce = origin_nonce++;

      if (rng_.chance(prot)) {
        ++stats.protected_txs;  // EIP-155: cannot echo
        continue;
      }
      // echo attempt: benign dual-intent broadcast by the sender, or an
      // attacker replaying someone else's confirmed transaction
      bool benign = false;
      if (rng_.chance(params_.benign_echo)) benign = true;
      else if (!rng_.chance(attack)) continue;

      std::uint32_t& dest_nonce = on_eth ? acct.nonce_etc : acct.nonce_eth;
      if (dest_nonce > used_nonce) {
        // the destination account moved past this nonce on its own (the
        // owner is active on both chains): the replay is permanently invalid
        ++stats.stale_nonce;
        continue;
      }
      // every transaction is public, so a rebroadcaster replays the whole
      // backlog [dest_nonce .. used_nonce] in order — all valid in sequence
      const std::uint32_t replayed = used_nonce + 1 - dest_nonce;
      dest_nonce = used_nonce + 1;
      if (on_eth)
        stats.echoes_into_etc += replayed;
      else
        stats.echoes_into_eth += replayed;

      if (sample_sink_ != nullptr && sample_sink_->size() < sample_cap_) {
        // observable features, conditioned on the echo's true nature:
        // dual-intent senders rebroadcast within seconds, often to
        // themselves, and have genuine two-chain activity; attackers watch
        // confirmed blocks and replay later, preferring large transfers
        EchoSample sample;
        sample.is_attack = !benign;
        if (benign) {
          sample.delay_seconds = rng_.lognormal(std::log(20.0), 0.8);
          sample.sender_active_on_dest =
              acct.home == Home::kBoth || rng_.chance(0.5);
          sample.self_transfer = rng_.chance(0.4);
          sample.value_ether = rng_.lognormal(std::log(2.0), 1.0);
        } else {
          sample.delay_seconds = rng_.lognormal(std::log(1800.0), 1.0);
          sample.sender_active_on_dest =
              acct.home == Home::kBoth && rng_.chance(0.3);
          sample.self_transfer = rng_.chance(0.03);
          sample.value_ether = rng_.lognormal(std::log(20.0), 1.2);
        }
        sample_sink_->push_back(sample);
      }
    }
  };

  run_side(eth_txs, /*on_eth=*/true);
  run_side(etc_txs, /*on_eth=*/false);
  return stats;
}

}  // namespace forksim::sim
