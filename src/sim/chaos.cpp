#include "sim/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "crypto/keccak.hpp"

namespace forksim::sim {

ChaosRunner::ChaosRunner(ChaosParams params)
    : params_(params),
      rng_(params.scenario.seed ^ 0xc8a05f4d2b179e63ull),
      tracer_([this] { return scenario_->loop().now(); }),
      scenario_(std::make_unique<ForkScenario>(params.scenario)) {
  faults_ = std::make_unique<p2p::FaultInjector>(scenario_->loop(),
                                                 rng_.fork());
  faults_->attach_to(scenario_->network());
  faults_->set_extra_loss(params_.extra_loss);
  faults_->set_duplicate_prob(params_.duplicate_prob);
  faults_->set_reorder_prob(params_.reorder_prob);
  faults_->set_reorder_delay(params_.reorder_delay);
  install_cut();
  install_churn();
  scenario_->attach_telemetry(registry_, &tracer_);
  faults_->attach_telemetry(registry_);
}

void ChaosRunner::install_cut() {
  if (params_.cut_start < 0) return;
  const std::size_t n = scenario_->node_count();
  // seeded random bisection, independent of the consensus fork sides
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t j = i + rng_.uniform(n - i);
    std::swap(order[i], order[j]);
  }
  std::unordered_set<std::size_t> half(order.begin(),
                                       order.begin() + n / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (half.contains(i) != half.contains(j))
        faults_->schedule_link_cut(scenario_->node(i).id(),
                                   scenario_->node(j).id(),
                                   params_.cut_start, params_.cut_duration);
}

void ChaosRunner::install_churn() {
  const std::size_t n = scenario_->node_count();
  // exempt the bootstrap anchors (first node on each side) and miner hosts
  std::unordered_set<const FullNode*> hosts;
  for (std::size_t m = 0; m < scenario_->miner_count(); ++m)
    hosts.insert(&scenario_->miner(m).node());
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || i == params_.scenario.nodes_eth) continue;
    if (hosts.contains(&scenario_->node(i))) continue;
    candidates.push_back(i);
  }
  const auto count = static_cast<std::size_t>(
      std::ceil(params_.churn_fraction * static_cast<double>(n)));
  churn_ = p2p::ChurnSchedule::sample(
      rng_, std::move(candidates), count, params_.churn_start,
      params_.churn_end, params_.mean_downtime, params_.restart_prob);

  auto& loop = scenario_->loop();
  const std::vector<p2p::NodeId> rejoin_bootstrap = {
      scenario_->node(0).id(),
      scenario_->node(params_.scenario.nodes_eth).id()};
  for (const p2p::ChurnEvent& ev : churn_.events()) {
    loop.schedule(ev.at, [this, ev, rejoin_bootstrap] {
      FullNode& node = scenario_->node(ev.node_index);
      if (ev.up) {
        if (node.running()) return;
        node.start(rejoin_bootstrap);
        set_node_mining(ev.node_index, true);
        ++restarts_;
      } else {
        if (!node.running()) return;
        set_node_mining(ev.node_index, false);
        node.shutdown();
        ++crashes_;
      }
    });
  }
}

void ChaosRunner::set_node_mining(std::size_t node_index, bool on) {
  const FullNode* node = &scenario_->node(node_index);
  for (std::size_t m = 0; m < scenario_->miner_count(); ++m) {
    Miner& miner = scenario_->miner(m);
    if (&miner.node() != node) continue;
    if (on)
      miner.start();
    else
      miner.stop();
  }
}

bool ChaosRunner::converged() const {
  std::optional<Hash256> eth_head;
  std::optional<Hash256> etc_head;
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    const FullNode& node = scenario_->node(i);
    if (!node.running()) continue;
    const Hash256 head = node.chain().head().hash();
    auto& side = scenario_->is_eth_node(i) ? eth_head : etc_head;
    if (side.has_value() && *side != head) return false;
    side = head;
  }
  if (!eth_head || !etc_head) return false;  // a whole side died
  // both sides must be past the fork, otherwise "one head per side" could
  // just mean nobody reached the divergence point yet
  return scenario_->best_height_eth() >= params_.scenario.fork_block &&
         scenario_->best_height_etc() >= params_.scenario.fork_block;
}

Hash256 ChaosRunner::fingerprint(const obs::Snapshot& telemetry) const {
  Keccak256 h;
  h.update(std::string_view("forksim/chaos-fingerprint"));
  h.update(telemetry.fingerprint().view());
  auto u64 = [&](std::uint64_t v) {
    const auto be = be_fixed64(v);
    h.update(BytesView(be.data(), be.size()));
  };
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    const FullNode& node = scenario_->node(i);
    u64(i);
    u64(node.running() ? 1 : 0);
    h.update(node.chain().head().hash().view());
    u64(node.chain().height());
    u64(node.blocks_imported());
    u64(node.sync_retries());
    u64(node.sync_timeouts());
    u64(node.peers_banned());
  }
  u64(scenario_->network().messages_sent());
  u64(scenario_->network().messages_delivered());
  const auto& f = faults_->counters();
  u64(f.dropped_by_loss);
  u64(f.dropped_by_cut);
  u64(f.duplicated);
  u64(f.reordered);
  return h.digest();
}

ChaosReport ChaosRunner::run() {
  auto& loop = scenario_->loop();
  while (loop.now() < params_.mining_duration) scenario_->run_for(5.0);
  for (std::size_t m = 0; m < scenario_->miner_count(); ++m)
    scenario_->miner(m).stop();
  const double mining_stopped = loop.now();

  ChaosReport report;
  while (loop.now() < mining_stopped + params_.settle_deadline) {
    scenario_->run_for(5.0);
    if (converged()) {
      report.converged = true;
      report.time_to_convergence = loop.now() - mining_stopped;
      break;
    }
  }

  report.height_eth = scenario_->best_height_eth();
  report.height_etc = scenario_->best_height_etc();
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    const FullNode& node = scenario_->node(i);
    if (node.running()) {
      ++(scenario_->is_eth_node(i) ? report.survivors_eth
                                   : report.survivors_etc);
    }
    report.sync_timeouts += node.sync_timeouts();
    report.sync_retries += node.sync_retries();
    report.dial_attempts += node.dial_attempts();
    report.peers_banned += node.peers_banned();
  }
  report.crashes = crashes_;
  report.restarts = restarts_;
  report.messages_sent = scenario_->network().messages_sent();
  report.faults = faults_->counters();
  report.telemetry = registry_.snapshot();
  report.fingerprint = fingerprint(report.telemetry);
  return report;
}

}  // namespace forksim::sim
