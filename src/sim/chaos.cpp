#include "sim/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "crypto/keccak.hpp"

namespace forksim::sim {

namespace {

void require_prob(double value, const char* field) {
  if (!(value >= 0.0 && value <= 1.0))
    throw std::invalid_argument(std::string("ChaosParams::") + field +
                                " must be a probability in [0, 1], got " +
                                std::to_string(value));
}

void require_non_negative(double value, const char* field) {
  if (!(value >= 0.0))
    throw std::invalid_argument(std::string("ChaosParams::") + field +
                                " must be >= 0, got " +
                                std::to_string(value));
}

}  // namespace

void ChaosParams::validate() const {
  // internet-scale wiring: degree/region configs fail loudly and by name
  // (a 5k-node sweep with degree > n-1 must die here, not an hour in)
  if (scenario.topology.enabled)
    scenario.topology.validate(scenario.nodes_eth + scenario.nodes_etc);
  if (scenario.geo.enabled) scenario.geo.validate();
  // client-mix / consensus-bug layer: inverted bug windows, mix fractions
  // that don't sum to 1, unknown families etc. die here by name, like the
  // degree/region configs above (no-op while the layer is disabled)
  scenario.clients.validate();
  if (scenario.num_shards == 0 ||
      scenario.num_shards > scenario.nodes_eth + scenario.nodes_etc)
    throw std::invalid_argument(
        "ChaosParams: scenario.num_shards (" +
        std::to_string(scenario.num_shards) + ") must be in [1, nodes=" +
        std::to_string(scenario.nodes_eth + scenario.nodes_etc) + "]");
  require_prob(extra_loss, "extra_loss");
  require_prob(duplicate_prob, "duplicate_prob");
  require_prob(reorder_prob, "reorder_prob");
  require_non_negative(reorder_delay, "reorder_delay");
  // negative cut_start is the documented "no cut" flag; the duration and
  // share must make sense regardless, so enabling the cut later can't
  // surface a latent nonsense value
  require_non_negative(cut_duration, "cut_duration");
  require_prob(partitioned_share, "partitioned_share");
  require_prob(churn_fraction, "churn_fraction");
  if (churn_end < churn_start)
    throw std::invalid_argument(
        "ChaosParams: churn_end (" + std::to_string(churn_end) +
        ") precedes churn_start (" + std::to_string(churn_start) + ")");
  require_non_negative(mean_downtime, "mean_downtime");
  require_prob(restart_prob, "restart_prob");
  require_prob(cold_restart_prob, "cold_restart_prob");
  require_prob(storage_faults.torn_write_prob,
               "storage_faults.torn_write_prob");
  require_prob(storage_faults.tail_truncate_prob,
               "storage_faults.tail_truncate_prob");
  require_prob(storage_faults.bit_rot_prob, "storage_faults.bit_rot_prob");
  require_non_negative(mining_duration, "mining_duration");
  require_non_negative(settle_deadline, "settle_deadline");
  require_prob(adversaries.fraction, "adversaries.fraction");
  require_non_negative(eclipse.start, "eclipse.start");
  if (eclipse.budget > 0) {
    if (!(eclipse.interval > 0.0))
      throw std::invalid_argument(
          "ChaosParams::eclipse.interval must be > 0, got " +
          std::to_string(eclipse.interval));
    if (eclipse.victims == 0)
      throw std::invalid_argument(
          "ChaosParams::eclipse.victims must be >= 1 when eclipse.budget "
          "> 0");
  }
  if (probe.enabled) {
    if (!(probe.interval > 0.0))
      throw std::invalid_argument(
          "ChaosParams::probe.interval must be > 0, got " +
          std::to_string(probe.interval));
    require_prob(probe.quorum_fraction, "probe.quorum_fraction");
    require_non_negative(probe.heal_sustain, "probe.heal_sustain");
    if (probe.failure_start >= 0 && probe.failure_end >= 0 &&
        probe.failure_end < probe.failure_start)
      throw std::invalid_argument(
          "ChaosParams: probe.failure_end precedes probe.failure_start");
  }
}

AvailabilityStats summarize_availability(
    const std::vector<AvailabilitySample>& samples,
    const ChaosParams::AvailabilityProbe& probe) {
  AvailabilityStats stats;
  stats.samples = samples.size();
  if (samples.empty()) return stats;

  std::size_t pre_total = 0, pre_ok = 0;
  std::size_t dur_total = 0, dur_ok = 0;
  std::size_t post_total = 0, post_ok = 0;
  for (const AvailabilitySample& s : samples) {
    const bool ok = s.available();
    if (!ok) stats.degraded_seconds += probe.interval;
    if (s.t < probe.failure_start) {
      ++pre_total;
      pre_ok += ok;
    } else if (s.t < probe.failure_end) {
      ++dur_total;
      dur_ok += ok;
    } else {
      ++post_total;
      post_ok += ok;
    }
  }
  const auto frac = [](std::size_t ok, std::size_t total) {
    return total ? static_cast<double>(ok) / static_cast<double>(total)
                 : -1.0;
  };
  stats.pre = frac(pre_ok, pre_total);
  stats.during_failure = frac(dur_ok, dur_total);
  stats.post = frac(post_ok, post_total);

  // Time-to-heal: the first post-failure instant from which availability
  // held for heal_sustain seconds. A streak that runs into the end of
  // sampling counts — the run ended (typically by converging) while still
  // healthy, which is the opposite of a relapse.
  const double last_t = samples.back().t;
  double streak_start = -1.0;
  for (const AvailabilitySample& s : samples) {
    if (s.t < probe.failure_end) continue;
    if (!s.available()) {
      streak_start = -1.0;
      continue;
    }
    if (streak_start < 0) streak_start = s.t;
    if (s.t - streak_start >= probe.heal_sustain) {
      stats.time_to_heal = std::max(0.0, streak_start - probe.failure_end);
      return stats;
    }
  }
  if (streak_start >= 0 && last_t - streak_start >= 0)
    stats.time_to_heal = std::max(0.0, streak_start - probe.failure_end);
  return stats;
}

namespace {

// An attack run hardens every honest node; an adversary-free run must leave
// the scenario params untouched so its behavior (and fingerprints) match
// builds without the Byzantine layer.
ChaosParams apply_adversary_hardening(ChaosParams p) {
  if (p.adversaries.fraction > 0)
    p.scenario.node_options.hardening.enabled = true;
  return p;
}

// An eclipse run with defenses requested switches every honest node's
// eclipse-resistance stack on; a defenses-off (or eclipse-free) run leaves
// the scenario params untouched so fingerprints match builds without the
// eclipse layer.
ChaosParams apply_eclipse_defenses(ChaosParams p) {
  if (p.eclipse.budget > 0 && p.eclipse.defenses)
    p.scenario.node_options.eclipse.enabled = true;
  return p;
}

// Validation runs before any member that could do work is built, so a bad
// sweep config fails at construction with a named field, not mid-run.
ChaosParams validated(ChaosParams p) {
  p.validate();
  return p;
}

}  // namespace

ChaosRunner::ChaosRunner(ChaosParams params)
    : params_(apply_eclipse_defenses(
          apply_adversary_hardening(validated(std::move(params))))),
      rng_(params_.scenario.seed ^ 0xc8a05f4d2b179e63ull),
      tracer_([this] { return scenario_->loop().now(); }),
      scenario_(std::make_unique<ForkScenario>(params_.scenario)) {
  faults_ = std::make_unique<p2p::FaultInjector>(scenario_->loop(),
                                                 rng_.fork());
  faults_->attach_to(scenario_->network());
  faults_->set_extra_loss(params_.extra_loss);
  faults_->set_duplicate_prob(params_.duplicate_prob);
  faults_->set_reorder_prob(params_.reorder_prob);
  faults_->set_reorder_delay(params_.reorder_delay);
  install_cut();
  // Host selection draws no rng, so it can run before churn (which must
  // exempt adversary hosts) without shifting the adversary-free draw
  // sequence; the draw-consuming install comes after churn.
  select_adversary_hosts();
  // Cast selection draws no rng either; it must precede churn so victims
  // and swarm hosts can be exempted.
  select_eclipse_cast();
  // Stores fork one disk Rng per node, so this must come before churn for a
  // stable draw order — and does nothing (zero draws) when the durability
  // layer is off.
  install_stores();
  install_churn();
  install_adversaries();
  install_eclipse();
  install_probe();
  scenario_->attach_telemetry(registry_, &tracer_);
  faults_->attach_telemetry(registry_);
  for (auto& adv : adversaries_) adv->attach_telemetry(registry_);
  for (auto& adv : eclipse_adversaries_) adv->attach_telemetry(registry_);
  for (auto& store : stores_) store->attach_telemetry(registry_);
}

void ChaosRunner::install_stores() {
  if (params_.cold_restart_prob <= 0) return;
  const std::size_t n = scenario_->node_count();
  disks_.reserve(n);
  stores_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // one disk per node: crash faults on one machine never touch another
    disks_.push_back(std::make_unique<db::SimDisk>(rng_.fork(),
                                                   params_.storage_faults));
    stores_.push_back(std::make_unique<db::BlockStore>(
        *disks_.back(), "node" + std::to_string(i)));
    scenario_->node(i).attach_store(stores_.back().get());
  }
}

std::vector<p2p::NodeId> ChaosRunner::rejoin_bootstrap_for(
    std::size_t i) const {
  const std::size_t anchor =
      scenario_->is_eth_node(i) ? 0 : params_.scenario.nodes_eth;
  return {scenario_->node(anchor).id()};
}

void ChaosRunner::install_cut() {
  if (params_.cut_start < 0) return;
  const std::size_t n = scenario_->node_count();
  // Seeded random victim set, independent of the consensus fork sides. The
  // shuffle is a full Fisher-Yates regardless of the share so every share
  // consumes the identical rng sequence — partitioned_share == 0.5 picks
  // the same nodes, draw for draw, as the historical hardcoded bisection.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t j = i + rng_.uniform(n - i);
    std::swap(order[i], order[j]);
  }
  // floor() the scaled count (+epsilon against 0.3*10 = 2.999... artifacts)
  // so share 0.5 yields exactly the old n/2 even for odd n
  const auto count = std::min(
      n, static_cast<std::size_t>(
             params_.partitioned_share * static_cast<double>(n) + 1e-9));
  cut_members_.assign(order.begin(), order.begin() + count);
  std::sort(cut_members_.begin(), cut_members_.end());
  std::unordered_set<std::size_t> half(order.begin(), order.begin() + count);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (half.contains(i) != half.contains(j))
        faults_->schedule_link_cut(scenario_->node(i).id(),
                                   scenario_->node(j).id(),
                                   params_.cut_start, params_.cut_duration);
}

void ChaosRunner::select_adversary_hosts() {
  if (params_.adversaries.fraction <= 0) return;
  const std::size_t n = scenario_->node_count();
  std::unordered_set<const FullNode*> miner_hosts;
  for (std::size_t m = 0; m < scenario_->miner_count(); ++m)
    miner_hosts.insert(&scenario_->miner(m).node());
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || i == params_.scenario.nodes_eth) continue;
    if (miner_hosts.contains(&scenario_->node(i))) continue;
    candidates.push_back(i);
  }
  // The highest-indexed eligible nodes turn hostile: deterministic without
  // consuming any rng draws (so fraction == 0 runs replay unchanged).
  auto count = static_cast<std::size_t>(std::ceil(
      params_.adversaries.fraction * static_cast<double>(n)));
  count = std::min(count, candidates.size());
  for (std::size_t k = 0; k < count; ++k)
    adversary_hosts_.insert(candidates[candidates.size() - 1 - k]);
}

void ChaosRunner::install_churn() {
  const std::size_t n = scenario_->node_count();
  // exempt the bootstrap anchors (first node on each side), miner hosts,
  // adversary hosts (an attacker that crashes is no test of defenses), and
  // the eclipse cast (the runner schedules the victim's reboot itself)
  std::unordered_set<const FullNode*> hosts;
  for (std::size_t m = 0; m < scenario_->miner_count(); ++m)
    hosts.insert(&scenario_->miner(m).node());
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || i == params_.scenario.nodes_eth) continue;
    if (hosts.contains(&scenario_->node(i))) continue;
    if (adversary_hosts_.contains(i)) continue;
    if (eclipse_protected_.contains(i)) continue;
    candidates.push_back(i);
  }
  const auto count = static_cast<std::size_t>(
      std::ceil(params_.churn_fraction * static_cast<double>(n)));
  churn_ = p2p::ChurnSchedule::sample(
      rng_, std::move(candidates), count, params_.churn_start,
      params_.churn_end, params_.mean_downtime, params_.restart_prob);

  auto& loop = scenario_->loop();
  // Cold-vs-warm is decided per restart event here, at install time, so the
  // runtime callbacks stay draw-free (and prob == 0 draws nothing at all).
  const auto& events = churn_.events();
  std::vector<char> cold(events.size(), 0);
  if (params_.cold_restart_prob > 0)
    for (std::size_t k = 0; k < events.size(); ++k)
      if (events[k].up && rng_.chance(params_.cold_restart_prob)) cold[k] = 1;
  for (std::size_t k = 0; k < events.size(); ++k) {
    const p2p::ChurnEvent& ev = events[k];
    const bool is_cold = cold[k] != 0;
    loop.schedule(ev.at, [this, ev, is_cold] {
      FullNode& node = scenario_->node(ev.node_index);
      if (ev.up) {
        if (node.running()) return;
        // rejoin through the node's own side's anchor: a post-fork restart
        // should pull toward its network, not burn dials on peers that
        // will DAO-challenge it away
        const std::vector<p2p::NodeId> rejoin =
            rejoin_bootstrap_for(ev.node_index);
        if (is_cold) {
          // the crash mangled the disk tail; recovery scans and repairs
          if (ev.node_index < disks_.size())
            disks_[ev.node_index]->crash();
          const RecoveryOutcome out = node.cold_restart(rejoin);
          ++cold_restarts_;
          store_replay_rejected_ += out.replay_rejected;
          recovery_seconds_ += out.resume_delay;
          // mining resumes with the node, after the modeled recovery time
          const std::size_t idx = ev.node_index;
          scenario_->loop().schedule(out.resume_delay, [this, idx] {
            if (scenario_->node(idx).running()) set_node_mining(idx, true);
          });
        } else {
          node.start(rejoin);
          set_node_mining(ev.node_index, true);
        }
        ++restarts_;
      } else {
        if (!node.running()) return;
        set_node_mining(ev.node_index, false);
        node.shutdown();
        ++crashes_;
      }
    });
  }
}

void ChaosRunner::install_adversaries() {
  if (adversary_hosts_.empty()) return;
  const auto& mix = params_.adversaries;
  std::vector<AdversaryKind> kinds;
  if (mix.forgers) kinds.push_back(AdversaryKind::kInvalidForger);
  if (mix.withholders) kinds.push_back(AdversaryKind::kWithholder);
  if (mix.spammers) kinds.push_back(AdversaryKind::kTxSpammer);
  if (mix.equivocators) kinds.push_back(AdversaryKind::kEquivocator);
  if (kinds.empty()) kinds.push_back(AdversaryKind::kInvalidForger);

  std::vector<std::size_t> ordered(adversary_hosts_.begin(),
                                   adversary_hosts_.end());
  std::sort(ordered.begin(), ordered.end());
  auto& loop = scenario_->loop();
  std::size_t k = 0;
  for (std::size_t idx : ordered) {
    AdversaryOptions opt;
    opt.kind = kinds[k++ % kinds.size()];
    opt.interval = mix.interval;
    auto adv = std::make_unique<Adversary>(scenario_->node(idx), opt,
                                           rng_.fork());
    Adversary* raw = adv.get();
    // first attack round fires at start + interval
    loop.schedule(mix.start, [raw] { raw->start(); });
    adversaries_.push_back(std::move(adv));
  }
}

void ChaosRunner::select_eclipse_cast() {
  if (params_.eclipse.budget == 0) return;
  const std::size_t n = scenario_->node_count();
  std::unordered_set<const FullNode*> miner_hosts;
  for (std::size_t m = 0; m < scenario_->miner_count(); ++m)
    miner_hosts.insert(&scenario_->miner(m).node());
  const auto eligible = [&](std::size_t i) {
    if (i == 0 || i == params_.scenario.nodes_eth) return false;  // anchors
    if (miner_hosts.contains(&scenario_->node(i))) return false;
    if (adversary_hosts_.contains(i)) return false;
    return true;
  };
  // Victims: the lowest-indexed eligible ETH-side nodes; swarm hosts: the
  // highest-indexed eligible nodes (either side). Both picks are
  // deterministic and draw-free, mirroring select_adversary_hosts.
  for (std::size_t i = 0;
       i < params_.scenario.nodes_eth &&
       eclipse_victims_.size() < params_.eclipse.victims;
       ++i)
    if (eligible(i)) eclipse_victims_.push_back(i);
  if (eclipse_victims_.size() < params_.eclipse.victims)
    throw std::invalid_argument(
        "ChaosParams::eclipse.victims: only " +
        std::to_string(eclipse_victims_.size()) +
        " eligible ETH-side nodes for " +
        std::to_string(params_.eclipse.victims) + " victims");
  std::unordered_set<std::size_t> victim_set(eclipse_victims_.begin(),
                                             eclipse_victims_.end());
  for (std::size_t i = n; i-- > 0 &&
                          eclipse_hosts_.size() < eclipse_victims_.size();)
    if (eligible(i) && !victim_set.contains(i)) eclipse_hosts_.push_back(i);
  if (eclipse_hosts_.size() < eclipse_victims_.size())
    throw std::invalid_argument(
        "ChaosParams::eclipse: not enough eligible nodes to host " +
        std::to_string(eclipse_victims_.size()) + " sybil swarms");
  for (std::size_t i : eclipse_victims_) eclipse_protected_.insert(i);
  for (std::size_t i : eclipse_hosts_) eclipse_protected_.insert(i);
  isolation_seconds_.assign(eclipse_victims_.size(), 0.0);
}

void ChaosRunner::install_eclipse() {
  if (eclipse_victims_.empty()) return;
  auto& loop = scenario_->loop();
  const std::size_t n = scenario_->node_count();

  for (std::size_t v = 0; v < eclipse_victims_.size(); ++v) {
    EclipseOptions opt;
    opt.victim = scenario_->node(eclipse_victims_[v]).id();
    // flooding the victim's seed makes its own outbound bootstrap dials
    // bounce with kTooManyPeers on an undefended network
    opt.slot_targets = rejoin_bootstrap_for(eclipse_victims_[v]);
    opt.sybil_budget = params_.eclipse.budget;
    opt.interval = params_.eclipse.interval;
    eclipse_adversaries_.push_back(std::make_unique<EclipseAdversary>(
        scenario_->node(eclipse_hosts_[v]), std::move(opt)));
  }

  // Region oracle (the IP-prefix analog): every honest node is its own
  // group — an honest peer set never looks homogeneous — while all sybils
  // of swarm k share group 100+k, which is exactly what the diversity caps
  // and the isolation detector key on. Unknown ids (none in practice) fall
  // back to a stable id-derived group.
  auto regions = std::make_shared<
      std::unordered_map<p2p::NodeId, std::uint32_t, p2p::NodeIdHasher>>();
  for (std::size_t i = 0; i < n; ++i)
    (*regions)[scenario_->node(i).id()] =
        1000u + static_cast<std::uint32_t>(i);
  for (std::size_t k = 0; k < eclipse_adversaries_.size(); ++k)
    for (const p2p::NodeId& sybil : eclipse_adversaries_[k]->sybils())
      (*regions)[sybil] = 100u + static_cast<std::uint32_t>(k);
  const auto region_fn = [regions](const p2p::NodeId& id) -> std::uint32_t {
    const auto it = regions->find(id);
    if (it != regions->end()) return it->second;
    return 0x80000000u | (static_cast<std::uint32_t>(id.data()[0]) << 8) |
           id.data()[1];
  };
  for (std::size_t i = 0; i < n; ++i)
    scenario_->node(i).set_region_fn(region_fn);

  // The attack opens at `start`; three rounds later the runner reboots each
  // victim into the entrenched swarm — the canonical reboot-then-eclipse
  // (an established honest session can't be displaced, but a rebooting
  // node's empty slots are up for grabs). reengage() fires the swarm's
  // handshakes at the same instant, so they land while the slots are still
  // empty.
  for (std::size_t v = 0; v < eclipse_victims_.size(); ++v) {
    EclipseAdversary* raw = eclipse_adversaries_[v].get();
    loop.schedule(params_.eclipse.start, [raw] { raw->start(); });
    const std::size_t idx = eclipse_victims_[v];
    const double strike = params_.eclipse.start +
                          3.0 * params_.eclipse.interval;
    loop.schedule(strike, [this, raw, idx] {
      FullNode& node = scenario_->node(idx);
      if (!node.running()) return;
      set_node_mining(idx, false);
      node.shutdown();
      raw->reengage();
      node.start(rejoin_bootstrap_for(idx));
      set_node_mining(idx, true);
    });
  }
  loop.schedule(params_.eclipse.interval, [this] { eclipse_probe_tick(); });
}

bool ChaosRunner::is_sybil_id(const p2p::NodeId& id) const {
  for (const auto& adv : eclipse_adversaries_)
    if (adv->is_sybil(id)) return true;
  return false;
}

bool ChaosRunner::victim_isolated(std::size_t idx) const {
  const FullNode& node = scenario_->node(idx);
  if (!node.running()) return false;
  // isolated = no honest active peer: a sybil-only set and an empty set
  // both mean the victim cannot hear the honest network
  for (const p2p::NodeId& peer : node.peers().active_peers())
    if (!is_sybil_id(peer)) return false;
  return true;
}

// Reads node state only — no messages, no rng draws — so the accounting
// never perturbs the attack timeline it measures.
void ChaosRunner::eclipse_probe_tick() {
  auto& loop = scenario_->loop();
  for (std::size_t v = 0; v < eclipse_victims_.size(); ++v)
    if (victim_isolated(eclipse_victims_[v]))
      isolation_seconds_[v] += params_.eclipse.interval;
  if (loop.now() + params_.eclipse.interval <=
      params_.mining_duration + params_.settle_deadline)
    loop.schedule(params_.eclipse.interval,
                  [this] { eclipse_probe_tick(); });
}

void ChaosRunner::install_probe() {
  probe_ = params_.probe;
  if (!probe_.enabled) return;
  // Per-family sampling rides on the probe: one timeline per mix slice.
  if (params_.scenario.clients.enabled) {
    for (const ClientShare& share : params_.scenario.clients.mix)
      family_list_.push_back(share.family);
    family_samples_.resize(family_list_.size());
    family_divergence_seconds_.assign(family_list_.size(), 0.0);
  }
  // Derive the phase window when the caller left it implicit: the cut
  // window when a partition is scheduled, else the consensus-bug window
  // when the clients layer schedules a patch, else the churn window. All
  // absent leaves a zero-width window at t=0 (everything is "post").
  if (probe_.failure_start < 0) {
    if (params_.cut_start >= 0) {
      probe_.failure_start = params_.cut_start;
      probe_.failure_end = params_.cut_start + params_.cut_duration;
    } else if (params_.scenario.clients.enabled &&
               params_.scenario.clients.patch_time >= 0) {
      probe_.failure_start = params_.scenario.clients.onset_time;
      probe_.failure_end = params_.scenario.clients.patch_time;
    } else if (params_.churn_fraction > 0) {
      probe_.failure_start = params_.churn_start;
      probe_.failure_end = params_.churn_end;
    } else {
      probe_.failure_start = 0.0;
      probe_.failure_end = 0.0;
    }
  }
  if (probe_.failure_end < probe_.failure_start)
    probe_.failure_end = probe_.failure_start;
  scenario_->loop().schedule(probe_.interval, [this] { probe_tick(); });
}

// The probe only reads node state — no messages, no rng draws — so a
// probe-less same-seed run is unchanged draw for draw, and a probed run
// is itself deterministic.
void ChaosRunner::probe_tick() {
  auto& loop = scenario_->loop();
  AvailabilitySample s;
  s.t = loop.now();
  s.eth_ok = side_meets_quorum(/*eth_side=*/true);
  s.etc_ok = side_meets_quorum(/*eth_side=*/false);
  availability_samples_.push_back(s);
  for (std::size_t f = 0; f < family_list_.size(); ++f) {
    AvailabilitySample fs;
    fs.t = s.t;
    // a family sample is a single verdict ("the family's honest members
    // meet quorum against their own sides' best heights"), mirrored into
    // both slots so summarize_availability folds it unchanged
    fs.eth_ok = fs.etc_ok = family_meets_quorum(family_list_[f]);
    family_samples_[f].push_back(fs);
    if (family_diverged(family_list_[f]))
      family_divergence_seconds_[f] += probe_.interval;
  }
  if (loop.now() + probe_.interval <=
      params_.mining_duration + params_.settle_deadline)
    loop.schedule(probe_.interval, [this] { probe_tick(); });
}

bool ChaosRunner::side_meets_quorum(bool eth_side) const {
  // Availability is a statement about the honest population: adversary
  // hosts neither count toward the quorum nor define the side's head.
  std::size_t honest = 0;
  core::BlockNumber best = 0;
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    if (scenario_->is_eth_node(i) != eth_side) continue;
    if (adversary_hosts_.contains(i)) continue;
    ++honest;
    const FullNode& node = scenario_->node(i);
    if (node.running()) best = std::max(best, node.chain().height());
  }
  if (honest == 0) return false;
  std::size_t live_and_synced = 0;
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    if (scenario_->is_eth_node(i) != eth_side) continue;
    if (adversary_hosts_.contains(i)) continue;
    const FullNode& node = scenario_->node(i);
    if (node.running() && node.chain().height() + probe_.max_head_lag >= best)
      ++live_and_synced;
  }
  // epsilon guards exact-threshold quorums (0.6 * 5 = 3.0000000000000004)
  return static_cast<double>(live_and_synced) + 1e-9 >=
         probe_.quorum_fraction * static_cast<double>(honest);
}

bool ChaosRunner::family_meets_quorum(ClientFamily family) const {
  // Like side_meets_quorum, but the population is the family's honest
  // members across BOTH fork sides, each judged against its own side's
  // best height (an ETC-side parity node lagging the ETH tip is not
  // degraded — the fork, not the bug, put it there).
  core::BlockNumber best_eth = 0, best_etc = 0;
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    if (adversary_hosts_.contains(i)) continue;
    const FullNode& node = scenario_->node(i);
    if (!node.running()) continue;
    auto& best = scenario_->is_eth_node(i) ? best_eth : best_etc;
    best = std::max(best, node.chain().height());
  }
  std::size_t members = 0, live_and_synced = 0;
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    if (adversary_hosts_.contains(i)) continue;
    if (scenario_->client_family_of(i) != family) continue;
    ++members;
    const FullNode& node = scenario_->node(i);
    const core::BlockNumber best =
        scenario_->is_eth_node(i) ? best_eth : best_etc;
    if (node.running() && node.chain().height() + probe_.max_head_lag >= best)
      ++live_and_synced;
  }
  if (members == 0) return false;
  return static_cast<double>(live_and_synced) + 1e-9 >=
         probe_.quorum_fraction * static_cast<double>(members);
}

bool ChaosRunner::family_diverged(ClientFamily family) const {
  // The family is diverged while any running honest member holds a head
  // its own side's anchor does not consider canonical: behind-but-on-chain
  // heads are canonical in the anchor's view, competing-branch heads are
  // not. (Anchors are churn-exempt, so "anchor down" only happens in
  // hand-built tests; treat it as no evidence.)
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    if (adversary_hosts_.contains(i)) continue;
    if (scenario_->client_family_of(i) != family) continue;
    const FullNode& node = scenario_->node(i);
    if (!node.running()) continue;
    const std::size_t anchor_index =
        scenario_->is_eth_node(i) ? 0 : params_.scenario.nodes_eth;
    if (i == anchor_index) continue;
    const FullNode& anchor = scenario_->node(anchor_index);
    if (!anchor.running()) continue;
    if (!anchor.chain().is_canonical(node.chain().head().hash())) return true;
  }
  return false;
}

void ChaosRunner::set_node_mining(std::size_t node_index, bool on) {
  const FullNode* node = &scenario_->node(node_index);
  for (std::size_t m = 0; m < scenario_->miner_count(); ++m) {
    Miner& miner = scenario_->miner(m);
    if (&miner.node() != node) continue;
    if (on)
      miner.start();
    else
      miner.stop();
  }
}

bool ChaosRunner::converged() const {
  std::optional<Hash256> eth_head;
  std::optional<Hash256> etc_head;
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    const FullNode& node = scenario_->node(i);
    if (!node.running()) continue;
    // Adversary hosts don't count: a banned attacker legitimately lags
    // while its victims refuse to serve it.
    if (adversary_hosts_.contains(i)) continue;
    const Hash256 head = node.chain().head().hash();
    auto& side = scenario_->is_eth_node(i) ? eth_head : etc_head;
    if (side.has_value() && *side != head) return false;
    side = head;
  }
  if (!eth_head || !etc_head) return false;  // a whole side died
  // both sides must be past the fork, otherwise "one head per side" could
  // just mean nobody reached the divergence point yet
  return scenario_->best_height_eth() >= params_.scenario.fork_block &&
         scenario_->best_height_etc() >= params_.scenario.fork_block;
}

Hash256 ChaosRunner::fingerprint(const obs::Snapshot& telemetry) const {
  Keccak256 h;
  h.update(std::string_view("forksim/chaos-fingerprint"));
  h.update(telemetry.fingerprint().view());
  auto u64 = [&](std::uint64_t v) {
    const auto be = be_fixed64(v);
    h.update(BytesView(be.data(), be.size()));
  };
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    const FullNode& node = scenario_->node(i);
    u64(i);
    u64(node.running() ? 1 : 0);
    h.update(node.chain().head().hash().view());
    u64(node.chain().height());
    u64(node.blocks_imported());
    u64(node.sync_retries());
    u64(node.sync_timeouts());
    u64(node.peers_banned());
  }
  u64(scenario_->network().messages_sent());
  u64(scenario_->network().messages_delivered());
  const auto& f = faults_->counters();
  u64(f.dropped_by_loss);
  u64(f.dropped_by_cut);
  u64(f.duplicated);
  u64(f.reordered);
  // Folded only for store-backed runs, so store-less fingerprints stay
  // byte-identical to those produced before the durability layer existed.
  if (!stores_.empty()) {
    u64(stores_.size());
    for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
      const FullNode& node = scenario_->node(i);
      u64(node.cold_restarts());
      u64(node.recovery_scanned());
      u64(node.recovery_corrupt());
      u64(node.recovery_replayed());
      u64(node.recovery_rejects());
      u64(stores_[i]->record_count());
      const db::DiskCounters& d = disks_[i]->counters();
      u64(d.appends);
      u64(d.crashes);
      u64(d.torn_writes);
      u64(d.tail_truncations);
      u64(d.bits_flipped);
    }
  }
  // Folded only for probed runs, so probe-less fingerprints stay
  // byte-identical to those produced before the availability layer existed.
  if (probe_.enabled) {
    const auto fx = [](double v) {
      return static_cast<std::uint64_t>(std::llround(v * 1e6));
    };
    u64(availability_samples_.size());
    for (const AvailabilitySample& s : availability_samples_) {
      u64(fx(s.t));
      u64(s.eth_ok ? 1 : 0);
      u64(s.etc_ok ? 1 : 0);
    }
    u64(fx(probe_.failure_start));
    u64(fx(probe_.failure_end));
  }
  // Folded only for client-diversity runs, so clients-off fingerprints
  // stay byte-identical to those produced before this layer existed.
  if (params_.scenario.clients.enabled) {
    const auto fx = [](double v) {
      return static_cast<std::uint64_t>(std::llround(v * 1e6));
    };
    u64(scenario_->node_count());
    for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
      const FullNode& node = scenario_->node(i);
      u64(static_cast<std::uint64_t>(scenario_->client_family_of(i)));
      u64(node.disputed_blocks());
      u64(node.divergence_events());
      u64(node.consensus_patches());
    }
    if (scenario_->quirk_rules() != nullptr) {
      u64(scenario_->quirk_rules()->disputes());
      u64(scenario_->quirk_rules()->patched() ? 1 : 0);
    }
    for (std::size_t f = 0; f < family_list_.size(); ++f) {
      u64(family_samples_[f].size());
      for (const AvailabilitySample& s : family_samples_[f]) {
        u64(fx(s.t));
        u64(s.eth_ok ? 1 : 0);
      }
      u64(fx(family_divergence_seconds_[f]));
    }
  }
  // Folded only for attack runs, so adversary-free fingerprints stay
  // byte-identical to those produced before this layer existed.
  if (!adversaries_.empty()) {
    u64(adversaries_.size());
    for (const auto& adv : adversaries_) {
      const AdversaryCounters& c = adv->counters();
      u64(static_cast<std::uint64_t>(adv->options().kind));
      u64(c.rounds);
      u64(c.blocks_forged);
      u64(c.phantom_announcements);
      u64(c.txs_spammed);
      u64(c.equivocations);
    }
  }
  // Folded only for eclipse runs, so eclipse-free fingerprints stay
  // byte-identical to those produced before this layer existed.
  if (!eclipse_adversaries_.empty()) {
    const auto fx = [](double v) {
      return static_cast<std::uint64_t>(std::llround(v * 1e6));
    };
    u64(eclipse_adversaries_.size());
    for (std::size_t v = 0; v < eclipse_adversaries_.size(); ++v) {
      const EclipseCounters& c = eclipse_adversaries_[v]->counters();
      u64(eclipse_victims_[v]);
      u64(eclipse_hosts_[v]);
      u64(c.rounds);
      u64(c.table_floods);
      u64(c.status_floods);
      u64(c.lookups_answered);
      u64(c.withheld_requests);
      u64(fx(isolation_seconds_[v]));
    }
    for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
      const FullNode& node = scenario_->node(i);
      u64(node.eclipse_suspicions());
      u64(node.eclipse_recoveries());
    }
  }
  return h.digest();
}

ChaosReport ChaosRunner::run() {
  auto& loop = scenario_->loop();
  while (loop.now() < params_.mining_duration) scenario_->run_for(5.0);
  for (std::size_t m = 0; m < scenario_->miner_count(); ++m)
    scenario_->miner(m).stop();
  // The attack window is the mining window. Stopping the agents with the
  // miners keeps the settle phase honest-only: with no fresh blocks, an
  // equivocated total-difficulty tie could otherwise pin a lagging node on
  // a clone forever (ties never displace a head).
  //
  // Eclipse swarms are the exception: a real eclipse doesn't politely end
  // when mining does, so they keep flooding through the settle window — an
  // undefended victim must stay eclipsed (and the run unconverged), while
  // defended nodes must converge THROUGH the ongoing attack.
  for (auto& adv : adversaries_) adv->stop();
  const double mining_stopped = loop.now();

  ChaosReport report;
  while (loop.now() < mining_stopped + params_.settle_deadline) {
    scenario_->run_for(5.0);
    if (converged()) {
      report.converged = true;
      report.time_to_convergence = loop.now() - mining_stopped;
      break;
    }
  }

  report.height_eth = scenario_->best_height_eth();
  report.height_etc = scenario_->best_height_etc();
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    const FullNode& node = scenario_->node(i);
    if (node.running()) {
      ++(scenario_->is_eth_node(i) ? report.survivors_eth
                                   : report.survivors_etc);
    }
    report.sync_timeouts += node.sync_timeouts();
    report.sync_retries += node.sync_retries();
    report.dial_attempts += node.dial_attempts();
    report.peers_banned += node.peers_banned();
    report.disputed_blocks += node.disputed_blocks();
    report.divergence_events += node.divergence_events();
    report.consensus_patches += node.consensus_patches();
  }
  report.crashes = crashes_;
  report.restarts = restarts_;
  report.messages_sent = scenario_->network().messages_sent();
  report.faults = faults_->counters();

  report.cold_restarts = cold_restarts_;
  report.store_replay_rejected = store_replay_rejected_;
  report.recovery_seconds = recovery_seconds_;
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    const FullNode& node = scenario_->node(i);
    report.store_records_scanned += node.recovery_scanned();
    report.store_corrupt_records += node.recovery_corrupt();
    report.store_blocks_replayed += node.recovery_replayed();
    const db::DiskCounters& d = disks_[i]->counters();
    report.store_appends += d.appends;
    report.disk_torn_writes += d.torn_writes;
    report.disk_tail_truncations += d.tail_truncations;
    report.disk_bits_flipped += d.bits_flipped;
  }

  report.adversaries = adversaries_.size();
  for (const auto& adv : adversaries_) {
    const AdversaryCounters& c = adv->counters();
    report.blocks_forged += c.blocks_forged;
    report.phantom_announcements += c.phantom_announcements;
    report.txs_spammed += c.txs_spammed;
    report.equivocations += c.equivocations;
  }
  if (!adversaries_.empty()) {
    for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
      if (adversary_hosts_.contains(i)) continue;
      FullNode& node = scenario_->node(i);
      report.wasted_executions += node.wasted_executions();
      report.invalid_cache_hits += node.invalid_cache_hits();
      report.rate_limited += node.rate_limited();
      report.txpool_evictions += node.txpool().evictions();
    }
    for (const auto& adv : adversaries_) {
      bool banned = false;
      for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
        if (adversary_hosts_.contains(i)) continue;
        if (scenario_->node(i).peers().ever_banned(adv->host().id())) {
          banned = true;
          break;
        }
      }
      if (banned) ++report.attackers_banned;
    }
  }
  report.eclipse_victims = eclipse_victims_.size();
  for (const auto& adv : eclipse_adversaries_) {
    const EclipseCounters& c = adv->counters();
    report.eclipse_sybils += adv->sybils().size();
    report.eclipse_table_floods += c.table_floods;
    report.eclipse_status_floods += c.status_floods;
    report.eclipse_lookups_answered += c.lookups_answered;
    report.eclipse_withheld_requests += c.withheld_requests;
  }
  if (!eclipse_adversaries_.empty()) {
    for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
      if (adversary_hosts_.contains(i)) continue;
      const FullNode& node = scenario_->node(i);
      report.eclipse_suspicions += node.eclipse_suspicions();
      report.eclipse_recoveries += node.eclipse_recoveries();
    }
    report.isolation_seconds = isolation_seconds_;
    for (std::size_t idx : eclipse_victims_)
      if (victim_isolated(idx)) ++report.victims_eclipsed_at_end;
  }

  // Friendly-fire oracle: counted whenever something could cause it — an
  // attack run (defenses active), a consensus-bug run (validity
  // disagreement between honest peers must NOT feed the ban machinery), or
  // an eclipse run (recovery drops sessions, it must never ban them).
  if (!adversaries_.empty() || params_.scenario.clients.enabled ||
      !eclipse_adversaries_.empty()) {
    for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
      if (adversary_hosts_.contains(i)) continue;
      const FullNode& node = scenario_->node(i);
      for (std::size_t j = 0; j < scenario_->node_count(); ++j) {
        if (j == i || adversary_hosts_.contains(j)) continue;
        if (node.peers().ever_banned(scenario_->node(j).id()))
          ++report.honest_ban_events;
      }
    }
  }
  for (std::size_t f = 0; f < family_list_.size(); ++f) {
    ChaosReport::ClientFamilyReport fr;
    fr.family = family_list_[f];
    for (std::size_t i = 0; i < scenario_->node_count(); ++i)
      if (scenario_->client_family_of(i) == fr.family) ++fr.nodes;
    fr.availability = summarize_availability(family_samples_[f], probe_);
    fr.divergence_seconds = family_divergence_seconds_[f];
    report.client_families.push_back(fr);
  }
  report.availability = summarize_availability(availability_samples_, probe_);
  report.telemetry = registry_.snapshot();
  report.fingerprint = fingerprint(report.telemetry);
  return report;
}

}  // namespace forksim::sim
