#include "sim/fastsim.hpp"

#include <algorithm>
#include <cmath>

namespace forksim::sim {

ChainProcess::ChainProcess(core::ChainConfig config, U256 initial_difficulty,
                           double initial_hashrate)
    : config_(std::move(config)),
      difficulty_(initial_difficulty),
      hashrate_(initial_hashrate) {}

BlockEvent ChainProcess::mine_next(Rng& rng) {
  // The race is run against (approximately) the parent difficulty: the
  // block's final difficulty moves by at most a few notches while miners
  // search, so sampling at the parent value is accurate to ~1/2048-per-notch.
  const double mean_interval = difficulty_.to_double() / hashrate_;
  const double interval = std::max(1.0, rng.exponential(mean_interval));
  time_ += interval;
  const auto timestamp = static_cast<core::Timestamp>(time_);
  const core::Timestamp sealed_at =
      std::max<core::Timestamp>(timestamp, parent_timestamp_ + 1);

  // finalize difficulty at the real timestamp (the miner re-targets as the
  // clock advances); for the epoch rule, retarget only at epoch boundaries
  U256 final_difficulty;
  if (rule_ == core::RetargetRule::kEpochAverage) {
    if (number_ + 1 - window_start_number_ >= kEpochLength) {
      final_difficulty = core::retarget(
          rule_, config_, number_ + 1, sealed_at, difficulty_,
          parent_timestamp_, time_ - window_start_time_,
          number_ + 1 - window_start_number_);
      window_start_time_ = time_;
      window_start_number_ = number_ + 1;
    } else {
      final_difficulty = difficulty_;
    }
  } else {
    final_difficulty = core::retarget(rule_, config_, number_ + 1, sealed_at,
                                      difficulty_, parent_timestamp_);
  }

  BlockEvent ev;
  ev.time = time_;
  ev.number = ++number_;
  ev.difficulty = final_difficulty.to_double();
  ev.interval = interval;
  ev.pool = pool_weights_.empty() ? 0 : rng.weighted_index(pool_weights_);

  difficulty_ = final_difficulty;
  parent_timestamp_ = sealed_at;
  return ev;
}

void MarketModel::step(double day, Rng& rng) {
  const double z = rng.normal(0.0, 1.0);
  price_ *= std::exp(drift_ - 0.5 * vol_ * vol_ + vol_ * z);
  for (const Shock& s : shocks_) {
    if (day - 1.0 < s.day && s.day <= day) price_ *= s.factor;
  }
  price_ = std::max(price_, 0.01);
}

void MigrationModel::step(double day, double profit_a, double profit_b,
                          Rng& rng) {
  // mobile portions
  const double mobile_a = std::max(0.0, a_ - params_.loyal_a);
  const double mobile_b = std::max(0.0, b_ - params_.loyal_b);

  // flow toward the more profitable chain, proportional to the relative
  // profitability gap, damped by mobility (inertia)
  const double total_profit = profit_a + profit_b;
  if (total_profit > 0) {
    const double gap = (profit_a - profit_b) / total_profit;  // [-1, 1]
    // noise models imperfect information
    const double noisy_gap = gap + rng.normal(0.0, 0.02);
    if (noisy_gap > 0) {
      const double moved = std::min(mobile_b, mobile_b * params_.mobility *
                                                  noisy_gap);
      b_ -= moved;
      a_ += moved;
    } else {
      const double moved = std::min(mobile_a, mobile_a * params_.mobility *
                                                  (-noisy_gap));
      a_ -= moved;
      b_ += moved;
    }
  }

  // external sink (Zcash launch): drains mobile hashpower in its window,
  // returns it afterwards
  const bool in_window =
      params_.sink_start_day >= 0 && day >= params_.sink_start_day &&
      day < params_.sink_end_day;
  if (in_window) {
    const double want_a = std::max(0.0, a_ - params_.loyal_a) *
                          params_.sink_fraction;
    const double want_b = std::max(0.0, b_ - params_.loyal_b) *
                          params_.sink_fraction;
    // drain gradually (a quarter of the target per day)
    const double take_a = std::min(want_a, (want_a - sink_from_a_) * 0.25 +
                                               0.0);
    const double take_b = std::min(want_b, (want_b - sink_from_b_) * 0.25);
    if (take_a > 0) {
      a_ -= take_a;
      sink_from_a_ += take_a;
    }
    if (take_b > 0) {
      b_ -= take_b;
      sink_from_b_ += take_b;
    }
  } else if (sink_from_a_ > 0 || sink_from_b_ > 0) {
    // miners trickle back over ~5 days
    const double back_a = sink_from_a_ * 0.2;
    const double back_b = sink_from_b_ * 0.2;
    a_ += back_a;
    sink_from_a_ -= back_a;
    b_ += back_b;
    sink_from_b_ -= back_b;
  }
}

double hashes_per_usd(double difficulty, double block_reward_ether,
                      double price_usd) {
  if (block_reward_ether <= 0 || price_usd <= 0) return 0;
  // hashes per block ~= difficulty; ether per block = reward;
  // hashes per ether = difficulty / reward; per USD: divide by price
  return difficulty / block_reward_ether / price_usd;
}

}  // namespace forksim::sim
