// A full node: blockchain + transaction pool + discovery + peer sessions +
// gossip, driven entirely by the discrete-event network. This is the
// protocol-faithful agent used in partition experiments: nodes discover
// each other via Kademlia, handshake with Status, cross-examine DAO fork
// headers, sync via GetBlocks, and gossip blocks and transactions.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/chain.hpp"
#include "core/txpool.hpp"
#include "db/blockstore.hpp"
#include "obs/trace.hpp"
#include "p2p/discovery.hpp"
#include "p2p/gossip.hpp"
#include "p2p/peers.hpp"

namespace forksim::sim {

/// Byzantine-resistance knobs. Everything here is opt-in: with `enabled`
/// false (the default) the node behaves — draw for draw — exactly like the
/// un-hardened implementation, which is what keeps adversary-free golden
/// fingerprints bit-identical. Adversarial scenarios switch it on.
struct HardeningOptions {
  bool enabled = false;
  /// Per-peer token buckets for block-bearing ingress (NewBlock pushes,
  /// unsolicited Blocks batches, NewBlockHashes announcements)…
  double blocks_per_sec = 8.0;
  double block_burst = 192.0;
  /// …and for transaction gossip (tokens are charged per transaction).
  double txs_per_sec = 64.0;
  double tx_burst = 1024.0;
  /// A single Transactions message containing at least this many hard
  /// rejects (bad signature / wrong chain / underpriced) is a spam batch:
  /// honest gossip races produce duplicates, never piles of invalid txs.
  std::size_t tx_junk_threshold = 16;
  /// Distinct children of one parent announced by one session before we
  /// call it equivocation. Honest relays forward at most the (one or two)
  /// children that actually took the head.
  std::size_t equivocation_threshold = 3;
};

/// Eclipse-resistance knobs: discovery diversity caps, an inbound/outbound
/// slot split, ping-before-evict, feeler dials, persisted anchor peers, and
/// the isolation detector. Like HardeningOptions, everything is strictly
/// opt-in: with `enabled` false (the default) the node behaves draw-for-draw
/// exactly like the unhardened implementation, keeping eclipse-free golden
/// fingerprints bit-identical.
struct EclipseDefenseOptions {
  bool enabled = false;
  /// Slot split: at most this many of NodeOptions::max_peers sessions may
  /// be inbound, so an inbound handshake flood can never exhaust the
  /// outbound dial headroom…
  std::size_t max_inbound = 8;
  /// …and at most this many inbound sessions per group (the geo/region
  /// layer standing in for IP prefixes — a sybil swarm shares a group the
  /// way a real one shares a /24).
  std::size_t inbound_group_cap = 2;
  /// Discovery diversity caps (see DiscoveryDefense).
  std::size_t bucket_group_cap = 2;
  std::size_t table_group_cap = 6;
  /// Outbound dial diversity: skip dial candidates whose group already has
  /// this many sessions — XOR-ground sybils dominate closest() ordering,
  /// so the table caps alone don't protect the dialer. 0 = uncapped.
  std::size_t dial_group_cap = 2;
  /// Maintenance ticks a ping-before-evict challenge or feeler waits.
  std::uint32_t pending_ticks = 2;
  /// Per-tick probability of one feeler ping validating a table entry.
  double feeler_chance = 0.25;
  /// Long-lived active peers persisted through the attached store and
  /// redialed after a cold restart (0 disables anchors).
  std::size_t anchor_count = 2;
  /// Isolation detector: head stale for this long AND the active peer set
  /// at least this homogeneous (largest single-group share) with at least
  /// `min_peers_for_detection` active peers -> one-shot eclipse suspicion,
  /// drop every session, flush the table, re-bootstrap from seeds+anchors.
  double stale_after = 90.0;
  double homogeneity_threshold = 0.75;
  std::size_t min_peers_for_detection = 2;
};

struct NodeOptions {
  std::size_t max_peers = 25;
  /// Keep dialing until this many active sessions.
  std::size_t target_peers = 8;
  p2p::GossipPolicy gossip;
  /// Seconds between maintenance ticks (dial candidates, refresh buckets).
  double tick_interval = 5.0;
  std::size_t sync_batch = 32;
  /// Resilient sync: a GetBlocks whose reply hasn't arrived after
  /// `sync_timeout * sync_backoff^attempt` seconds is re-sent, preferring a
  /// different active peer, up to `sync_max_retries` times. Without this a
  /// single lost reply stalls sync until some unrelated event restarts it.
  double sync_timeout = 8.0;
  double sync_backoff = 1.6;
  std::uint32_t sync_max_retries = 5;
  /// Peer scoring / banning / liveness knobs.
  p2p::PeerPolicy peer_policy;
  /// Bound on blocks parked while their ancestors are fetched; beyond it
  /// orphans are evicted — unsolicited ones (gossip pushes) first, so an
  /// orphan flood cannot evict a deep sync's legitimately buffered chain.
  std::size_t max_orphans = 4096;
  /// Genesis parameters (must match across nodes meant to share a network).
  U256 genesis_difficulty = U256(131072);
  core::Gas genesis_gas_limit = 0;  // 0 = chain config default
  /// Run geth's DAO fork-header challenge against peers (ablation A5 turns
  /// this off to show what the network looks like without it).
  bool enable_dao_challenge = true;
  /// Disconnect peers that push blocks our chain rejects as wrong-fork
  /// (the organic severing mechanism; A5 disables it together with the
  /// challenge to show the un-partitioned failure mode: sessions persist
  /// and both sides gossip at each other forever).
  bool drop_wrong_fork_peers = true;
  /// Byzantine-resistance layer (off by default; see HardeningOptions).
  HardeningOptions hardening;
  /// Eclipse-resistance layer (off by default; see EclipseDefenseOptions).
  EclipseDefenseOptions eclipse;
  /// Fork monitor: distinct disputed blocks tracked from one competing
  /// branch before the node raises a `divergence` event (persistent
  /// peer-head disagreement, not a transient race).
  std::size_t divergence_threshold = 3;
  /// Modeled cost of a cold restart: sim-seconds per block replayed from
  /// the attached store (log scan + re-execution latency stand-in). The
  /// node rejoins the network only after this much recovery time.
  double recovery_seconds_per_block = 0.002;
};

/// What one cold restart recovered and what it cost.
struct RecoveryOutcome {
  db::RecoveryStats store;            // the store's scan/repair stats
  std::uint64_t blocks_replayed = 0;  // log records re-imported into the chain
  /// Checksummed records the chain still refused — must stay 0: a valid
  /// checksum proves the record is byte-identical to a block this same
  /// chain once imported.
  std::uint64_t replay_rejected = 0;
  /// Modeled sim-seconds before the node rejoins (start() fires then).
  double resume_delay = 0.0;
};

class FullNode {
 public:
  FullNode(p2p::Network& network, p2p::NodeId id, core::ChainConfig config,
           core::Executor& executor, const core::GenesisAlloc& alloc,
           Rng rng, NodeOptions options = NodeOptions());
  ~FullNode();

  FullNode(const FullNode&) = delete;
  FullNode& operator=(const FullNode&) = delete;

  const p2p::NodeId& id() const noexcept { return id_; }
  p2p::Network& network() noexcept { return network_; }
  core::Blockchain& chain() noexcept { return chain_; }
  const core::Blockchain& chain() const noexcept { return chain_; }
  core::TxPool& txpool() noexcept { return pool_; }
  const p2p::PeerSet& peers() const noexcept { return peers_; }
  const p2p::DiscoveryService& discovery() const noexcept {
    return discovery_;
  }

  /// Join the network: seed the routing table and start ticking.
  void start(const std::vector<p2p::NodeId>& bootstrap);

  /// Leave the network (handler detached; peers will drop us). Models the
  /// mass node exodus at the fork.
  void shutdown();
  bool running() const noexcept { return running_; }
  /// Monotonic life counter: shutdown() bumps it so timers armed in a
  /// previous life can never fire into the next one (test hook).
  std::uint64_t generation() const noexcept { return generation_; }

  /// Attach a durable block store (must outlive the node). Every block the
  /// chain imports from now on is appended as a checksummed log record;
  /// cold_restart() recovers from it. Never consumes Rng draws.
  void attach_store(db::BlockStore* store) { store_ = store; }
  db::BlockStore* store() const noexcept { return store_; }

  /// Cold restart: the process died. The in-memory chain resets to
  /// genesis, the mempool empties, and the node recovers by scanning the
  /// attached store — verify checksums, truncate the log at the first
  /// invalid record, replay the surviving blocks through the state engine
  /// — then rejoins the network after the modeled recovery delay (start()
  /// is scheduled resume_delay sim-seconds out; the lost tail re-syncs
  /// from peers through the normal timeout/retry machinery). Without a
  /// store this is a total wipe: the node restarts from genesis.
  RecoveryOutcome cold_restart(const std::vector<p2p::NodeId>& bootstrap);
  std::uint64_t cold_restarts() const noexcept { return cold_restarts_; }
  /// Sum of replay_rejected over this node's cold restarts (must stay 0).
  std::uint64_t recovery_rejects() const noexcept {
    return recovery_rejects_;
  }
  // recovery totals over this node's cold restarts
  std::uint64_t recovery_scanned() const noexcept { return recovery_scanned_; }
  std::uint64_t recovery_corrupt() const noexcept { return recovery_corrupt_; }
  std::uint64_t recovery_replayed() const noexcept {
    return recovery_replayed_;
  }
  double recovery_seconds() const noexcept { return recovery_seconds_; }

  /// Inject a locally-created transaction (adds to the pool and gossips).
  core::PoolAddResult submit_transaction(const core::Transaction& tx);

  /// A locally-mined block: import and gossip. Returns the import outcome.
  core::ImportOutcome submit_block(const core::Block& block);

  /// Fired after every canonical-head change (miners re-target on this).
  std::function<void()> on_head_changed;

  /// Install a validation-rule overlay on this node's chain (the
  /// consensus-bug fault injector; see core::ValidationRuleSet). Non-owning;
  /// never consumes Rng draws.
  void set_validation_rules(const core::ValidationRuleSet* rules) noexcept {
    chain_.set_validation_rules(rules);
  }

  /// The hotfix: clear the fork monitor's disputed-range state and pull the
  /// disputed tip from active peers so full revalidation (and the deep
  /// reorg back to the majority chain) can begin. The caller is expected to
  /// have already disabled the quirk (e.g. QuirkRuleSet::apply_patch).
  void apply_consensus_patch();

  /// Summary of the headers this node refused to execute but kept
  /// following (header-only) because its rules disputed them.
  struct DisputedRange {
    core::BlockNumber min_number = 0;
    core::BlockNumber max_number = 0;
    Hash256 tip{};          // highest disputed header seen
    std::size_t count = 0;  // distinct disputed blocks tracked
    bool divergence_raised = false;
  };
  const DisputedRange& disputed_range() const noexcept { return disputed_; }

  /// Fork-monitor telemetry: blocks our rules disputed (header-followed,
  /// never executed, never blamed on the peer), divergence events raised
  /// (persistent competing head detected), and consensus patches applied.
  std::uint64_t disputed_blocks() const noexcept { return disputed_blocks_; }
  std::uint64_t divergence_events() const noexcept {
    return divergence_events_;
  }
  std::uint64_t consensus_patches() const noexcept {
    return consensus_patches_;
  }

  // telemetry
  std::uint64_t blocks_imported() const noexcept { return blocks_imported_; }
  std::uint64_t txs_received() const noexcept { return txs_received_; }
  /// Full NewBlock pushes received for blocks we already had — the
  /// redundancy cost of aggressive push gossip.
  std::uint64_t duplicate_block_pushes() const noexcept {
    return duplicate_block_pushes_;
  }
  std::uint64_t wrong_fork_drops() const noexcept {
    return peers_.wrong_fork_drops();
  }
  /// Resilient-sync telemetry.
  std::uint64_t sync_timeouts() const noexcept { return sync_timeouts_; }
  std::uint64_t sync_retries() const noexcept { return sync_retries_; }
  std::uint64_t sync_gave_up() const noexcept { return sync_gave_up_; }
  std::size_t sync_inflight() const noexcept { return pending_fetch_.size(); }
  std::uint64_t dial_attempts() const noexcept { return dial_attempts_; }
  std::uint64_t peers_banned() const noexcept { return peers_.bans(); }
  std::size_t orphan_count() const noexcept { return orphan_order_.size(); }
  /// Orphans evicted because the buffer hit NodeOptions::max_orphans.
  std::uint64_t orphan_evictions() const noexcept { return orphan_evictions_; }
  /// Defense telemetry (all zero unless hardening is enabled and peers
  /// misbehave). Announcements/pushes of hashes already in the
  /// known-invalid cache — attacks absorbed without re-validation.
  std::uint64_t invalid_cache_hits() const noexcept {
    return invalid_cache_hits_;
  }
  /// Blocks rejected by the cheap structural precheck, before any header
  /// rule or execution ran.
  std::uint64_t precheck_rejections() const noexcept {
    return precheck_rejections_;
  }
  /// Messages dropped by a per-peer token bucket.
  std::uint64_t rate_limited() const noexcept { return rate_limited_; }
  /// Same-parent sibling floods detected (equivocation).
  std::uint64_t equivocations_detected() const noexcept {
    return equivocations_;
  }
  /// Fetches abandoned because nobody but the announcer ever advertised the
  /// hash — phantom announcements from a withholder.
  std::uint64_t withheld_announcements() const noexcept { return withheld_; }
  /// Blocks that were fully executed only to fail a body commitment
  /// (state/receipts/gas mismatch) — the work an invalid-block forger
  /// managed to waste.
  std::uint64_t wasted_executions() const noexcept {
    return wasted_executions_;
  }

  /// Install the group (region/AS) oracle shared by the eclipse defenses:
  /// discovery diversity caps, the inbound group cap, the dial cap, and the
  /// isolation detector's homogeneity score all key on it. Without one the
  /// group caps never bind and the detector never fires. Never consumes
  /// Rng draws.
  void set_region_fn(std::function<std::uint32_t(const p2p::NodeId&)> fn);

  /// Eclipse telemetry: one-shot isolation suspicions raised and
  /// drop-and-re-bootstrap recoveries performed.
  std::uint64_t eclipse_suspicions() const noexcept {
    return eclipse_suspicions_;
  }
  std::uint64_t eclipse_recoveries() const noexcept {
    return eclipse_recoveries_;
  }
  /// Current anchor set (longest-lived active peers; persisted via the
  /// attached store when the eclipse defense is on).
  const std::vector<p2p::NodeId>& anchors() const noexcept { return anchors_; }
  /// Largest single-group share of the active peer set (0 with no region
  /// oracle or no active peers) — the detector's homogeneity score,
  /// exposed for tests and probes.
  double peer_homogeneity() const;

  /// Register node.*/peers.* metrics in `reg` (shared across nodes: named
  /// counters aggregate over the population) and, when `tracer` is given,
  /// emit sync/lifecycle instants on display lane `lane` (one lane per
  /// node keeps Chrome traces readable). Call any time; prior counts fold
  /// in. Never consumes Rng draws.
  void attach_telemetry(obs::Registry& reg, obs::EventTracer* tracer = nullptr,
                        std::uint32_t lane = 0);

 private:
  void on_message(const p2p::NodeId& from, const Bytes& wire);
  void handle_eth(const p2p::NodeId& from, const p2p::Message& msg);
  void on_peer_active(const p2p::NodeId& peer, const p2p::Status& status);
  void tick();
  /// Eclipse-defense tick work (feelers, detector, anchors); only called
  /// when the defense is enabled.
  void eclipse_tick();
  void check_isolation();
  void recover_from_eclipse();
  void update_anchors();
  bool dial_over_group_cap(const p2p::NodeId& candidate) const;

  p2p::Status make_status() const;
  std::optional<core::BlockHeader> dao_header() const;
  bool check_dao_header(const std::optional<core::BlockHeader>& header) const;

  void import_and_relay(const p2p::NodeId& from, const core::Block& block);
  void after_head_change();
  void add_orphan(const core::Block& block, bool solicited);
  void try_orphans();
  void request_blocks(const p2p::NodeId& peer, const Hash256& head,
                      std::uint32_t count);
  void arm_fetch_timer(const Hash256& head, std::uint64_t token,
                       double timeout);
  void on_fetch_timeout(const Hash256& head, std::uint64_t token);
  void resolve_fetch(const Hash256& hash);
  void relay_block(const core::Block& block, bool became_head);
  void relay_transactions(const std::vector<core::Transaction>& txs,
                          const std::optional<p2p::NodeId>& skip);
  void send(const p2p::NodeId& to, const p2p::Message& msg);

  /// chain_.import plus durability: imported blocks are appended to the
  /// attached store (skipped while a recovery replay is re-reading them).
  core::ImportOutcome import_block(const core::Block& block);

  p2p::Network& network_;
  p2p::NodeId id_;
  core::Blockchain chain_;
  core::TxPool pool_;
  Rng rng_;
  NodeOptions options_;
  p2p::DiscoveryService discovery_;
  p2p::PeerSet peers_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  // invalidates pending ticks on shutdown
  std::vector<p2p::NodeId> bootstrap_;

  /// Orphans waiting for ancestors, keyed by parent hash; a parent can
  /// have several orphaned children (sibling forks), and the whole buffer
  /// is bounded by NodeOptions::max_orphans with FIFO eviction.
  std::unordered_map<Hash256, std::vector<core::Block>, Hash256Hasher>
      orphans_;
  /// Insertion order for eviction; solicited = arrived in a reply to one
  /// of our own GetBlocks (sync state, evicted only as a last resort).
  struct OrphanRef {
    Hash256 parent;
    Hash256 hash;
    bool solicited = false;
  };
  std::deque<OrphanRef> orphan_order_;

  /// In-flight GetBlocks requests keyed by the requested head hash.
  struct PendingFetch {
    p2p::NodeId peer;
    /// Who announced the hash in the first place (hardening blames phantom
    /// announcements on the announcer, not on whoever we last retried).
    p2p::NodeId origin;
    std::uint32_t max_blocks = 1;
    std::uint32_t attempt = 0;
    std::uint64_t token = 0;  // invalidates superseded timeout events
  };
  std::unordered_map<Hash256, PendingFetch, Hash256Hasher> pending_fetch_;
  std::uint64_t next_fetch_token_ = 0;

  /// Hashes our rules rejected (wrong-fork / invalid blocks): never
  /// re-fetched no matter how often the other side re-announces them.
  /// Bounded FIFO so a hostile flood of junk hashes can't grow it forever.
  std::unordered_set<Hash256, Hash256Hasher> rejected_;
  std::deque<Hash256> rejected_order_;
  void mark_rejected(const Hash256& hash);

  /// Fork monitor (empty unless a validation overlay disputes something).
  /// Disputed hashes are tracked separately from rejected_: both suppress
  /// re-fetching, but a dispute is a validity *disagreement* with an honest
  /// peer — it carries no blame, and the cache is cleared (not kept) by
  /// apply_consensus_patch so the blocks can be re-fetched and revalidated.
  /// Headers are kept (header-only following) so the monitor knows the
  /// competing branch's shape and the patch knows which tip to pull.
  std::unordered_set<Hash256, Hash256Hasher> disputed_hashes_;
  std::deque<Hash256> disputed_order_;
  std::unordered_map<Hash256, core::BlockHeader, Hash256Hasher>
      disputed_headers_;
  DisputedRange disputed_;
  /// Track a disputed header: header-only follow, fetch-suppress, extend
  /// the range, raise `divergence` once the competing branch persists.
  void note_disputed(const core::BlockHeader& header, const Hash256& hash);

  std::uint64_t blocks_imported_ = 0;
  std::uint64_t txs_received_ = 0;
  std::uint64_t duplicate_block_pushes_ = 0;
  std::uint64_t sync_timeouts_ = 0;
  std::uint64_t sync_retries_ = 0;
  std::uint64_t sync_gave_up_ = 0;
  std::uint64_t dial_attempts_ = 0;
  std::uint64_t orphan_evictions_ = 0;
  std::uint64_t invalid_cache_hits_ = 0;
  std::uint64_t precheck_rejections_ = 0;
  std::uint64_t rate_limited_ = 0;
  std::uint64_t equivocations_ = 0;
  std::uint64_t withheld_ = 0;
  std::uint64_t wasted_executions_ = 0;
  std::uint64_t disputed_blocks_ = 0;
  std::uint64_t divergence_events_ = 0;
  std::uint64_t consensus_patches_ = 0;
  bool rechallenged_at_fork_ = false;

  /// Eclipse-defense state (inert while the layer is disabled).
  std::function<std::uint32_t(const p2p::NodeId&)> region_fn_;
  double last_head_change_time_ = 0.0;
  bool eclipse_suspected_ = false;  // one-shot until the head moves again
  std::uint64_t eclipse_suspicions_ = 0;
  std::uint64_t eclipse_recoveries_ = 0;
  /// When each currently-known peer first went active (anchor aging).
  std::unordered_map<p2p::NodeId, double, p2p::NodeIdHasher> peer_first_seen_;
  std::vector<p2p::NodeId> anchors_;

  /// Durability layer (null / zero unless a store is attached).
  db::BlockStore* store_ = nullptr;
  bool replaying_ = false;  // recovery replay must not re-append its input
  std::uint64_t cold_restarts_ = 0;
  std::uint64_t recovery_rejects_ = 0;
  std::uint64_t recovery_scanned_ = 0;
  std::uint64_t recovery_corrupt_ = 0;
  std::uint64_t recovery_replayed_ = 0;
  double recovery_seconds_ = 0.0;

  /// Staged ingress pipeline helpers (active only under hardening).
  bool hardened() const noexcept { return options_.hardening.enabled; }
  /// Cheap structural plausibility: field sizes and arithmetic only — no
  /// trie roots, no execution, no extra telemetry in honest runs.
  bool precheck_block(const core::Block& block) const;
  void init_session_buckets(const p2p::NodeId& peer);
  /// Record an import rejection: cache the hash and attribute wasted
  /// execution work when the block got as far as running transactions.
  void note_import_reject(const Hash256& hash, core::ImportResult result);
  /// Bump a lazily-registered defense counter (created on first event so
  /// adversary-free registries — and their fingerprints — are unchanged).
  void bump_defense(obs::Counter*& c, const char* name);

  void update_orphan_gauge();
  obs::Counter* tm_imported_ = nullptr;
  obs::Counter* tm_txs_ = nullptr;
  obs::Counter* tm_dup_push_ = nullptr;
  obs::Counter* tm_sync_timeouts_ = nullptr;
  obs::Counter* tm_sync_retries_ = nullptr;
  obs::Counter* tm_sync_gave_up_ = nullptr;
  obs::Counter* tm_dials_ = nullptr;
  obs::Counter* tm_orphan_evict_ = nullptr;
  obs::Gauge* tm_orphan_occ_ = nullptr;
  // lazily registered (see bump_defense)
  obs::Counter* tm_cold_restarts_ = nullptr;
  obs::Counter* tm_rec_scanned_ = nullptr;
  obs::Counter* tm_rec_corrupt_ = nullptr;
  obs::Counter* tm_rec_replayed_ = nullptr;
  obs::Gauge* tm_rec_seconds_ = nullptr;
  obs::Counter* tm_cache_hits_ = nullptr;
  obs::Counter* tm_precheck_ = nullptr;
  obs::Counter* tm_rate_limited_ = nullptr;
  obs::Counter* tm_equivocations_ = nullptr;
  obs::Counter* tm_withheld_ = nullptr;
  obs::Counter* tm_wasted_ = nullptr;
  obs::Counter* tm_disputed_ = nullptr;
  obs::Counter* tm_divergence_ = nullptr;
  obs::Counter* tm_patches_ = nullptr;
  obs::Counter* tm_eclipse_suspicions_ = nullptr;
  obs::Counter* tm_eclipse_recoveries_ = nullptr;
  obs::Registry* reg_ = nullptr;
  obs::EventTracer* tracer_ = nullptr;
  std::uint32_t lane_ = 0;
};

}  // namespace forksim::sim
