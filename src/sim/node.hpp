// A full node: blockchain + transaction pool + discovery + peer sessions +
// gossip, driven entirely by the discrete-event network. This is the
// protocol-faithful agent used in partition experiments: nodes discover
// each other via Kademlia, handshake with Status, cross-examine DAO fork
// headers, sync via GetBlocks, and gossip blocks and transactions.
#pragma once

#include <functional>
#include <memory>

#include "core/chain.hpp"
#include "core/txpool.hpp"
#include "p2p/discovery.hpp"
#include "p2p/gossip.hpp"
#include "p2p/peers.hpp"

namespace forksim::sim {

struct NodeOptions {
  std::size_t max_peers = 25;
  /// Keep dialing until this many active sessions.
  std::size_t target_peers = 8;
  p2p::GossipPolicy gossip;
  /// Seconds between maintenance ticks (dial candidates, refresh buckets).
  double tick_interval = 5.0;
  std::size_t sync_batch = 32;
  /// Genesis parameters (must match across nodes meant to share a network).
  U256 genesis_difficulty = U256(131072);
  core::Gas genesis_gas_limit = 0;  // 0 = chain config default
  /// Run geth's DAO fork-header challenge against peers (ablation A5 turns
  /// this off to show what the network looks like without it).
  bool enable_dao_challenge = true;
  /// Disconnect peers that push blocks our chain rejects as wrong-fork
  /// (the organic severing mechanism; A5 disables it together with the
  /// challenge to show the un-partitioned failure mode: sessions persist
  /// and both sides gossip at each other forever).
  bool drop_wrong_fork_peers = true;
};

class FullNode {
 public:
  FullNode(p2p::Network& network, p2p::NodeId id, core::ChainConfig config,
           core::Executor& executor, const core::GenesisAlloc& alloc,
           Rng rng, NodeOptions options = NodeOptions());
  ~FullNode();

  FullNode(const FullNode&) = delete;
  FullNode& operator=(const FullNode&) = delete;

  const p2p::NodeId& id() const noexcept { return id_; }
  p2p::Network& network() noexcept { return network_; }
  core::Blockchain& chain() noexcept { return chain_; }
  const core::Blockchain& chain() const noexcept { return chain_; }
  core::TxPool& txpool() noexcept { return pool_; }
  const p2p::PeerSet& peers() const noexcept { return peers_; }
  const p2p::DiscoveryService& discovery() const noexcept {
    return discovery_;
  }

  /// Join the network: seed the routing table and start ticking.
  void start(const std::vector<p2p::NodeId>& bootstrap);

  /// Leave the network (handler detached; peers will drop us). Models the
  /// mass node exodus at the fork.
  void shutdown();
  bool running() const noexcept { return running_; }

  /// Inject a locally-created transaction (adds to the pool and gossips).
  core::PoolAddResult submit_transaction(const core::Transaction& tx);

  /// A locally-mined block: import and gossip. Returns the import outcome.
  core::ImportOutcome submit_block(const core::Block& block);

  /// Fired after every canonical-head change (miners re-target on this).
  std::function<void()> on_head_changed;

  // telemetry
  std::uint64_t blocks_imported() const noexcept { return blocks_imported_; }
  std::uint64_t txs_received() const noexcept { return txs_received_; }
  /// Full NewBlock pushes received for blocks we already had — the
  /// redundancy cost of aggressive push gossip.
  std::uint64_t duplicate_block_pushes() const noexcept {
    return duplicate_block_pushes_;
  }
  std::uint64_t wrong_fork_drops() const noexcept {
    return peers_.wrong_fork_drops();
  }

 private:
  void on_message(const p2p::NodeId& from, const Bytes& wire);
  void handle_eth(const p2p::NodeId& from, const p2p::Message& msg);
  void on_peer_active(const p2p::NodeId& peer, const p2p::Status& status);
  void tick();

  p2p::Status make_status() const;
  std::optional<core::BlockHeader> dao_header() const;
  bool check_dao_header(const std::optional<core::BlockHeader>& header) const;

  void import_and_relay(const p2p::NodeId& from, const core::Block& block);
  void after_head_change();
  void try_orphans();
  void relay_block(const core::Block& block);
  void relay_transactions(const std::vector<core::Transaction>& txs,
                          const std::optional<p2p::NodeId>& skip);
  void send(const p2p::NodeId& to, const p2p::Message& msg);

  p2p::Network& network_;
  p2p::NodeId id_;
  core::Blockchain chain_;
  core::TxPool pool_;
  Rng rng_;
  NodeOptions options_;
  p2p::DiscoveryService discovery_;
  p2p::PeerSet peers_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  // invalidates pending ticks on shutdown
  std::vector<p2p::NodeId> bootstrap_;

  /// Orphans waiting for ancestors, keyed by parent hash.
  std::unordered_map<Hash256, core::Block, Hash256Hasher> orphans_;

  std::uint64_t blocks_imported_ = 0;
  std::uint64_t txs_received_ = 0;
  std::uint64_t duplicate_block_pushes_ = 0;
  bool rechallenged_at_fork_ = false;
};

}  // namespace forksim::sim
