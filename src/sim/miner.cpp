#include "sim/miner.hpp"

#include <algorithm>

namespace forksim::sim {

Miner::Miner(FullNode& node, Address coinbase, double hashrate, Rng rng,
             core::Timestamp genesis_epoch)
    : node_(node),
      coinbase_(coinbase),
      hashrate_(hashrate),
      rng_(rng),
      genesis_epoch_(genesis_epoch) {
  // chain a head-change hook without clobbering an existing one
  auto previous = node_.on_head_changed;
  node_.on_head_changed = [this, previous = std::move(previous)] {
    if (previous) previous();
    if (running_) reschedule();
  };
}

void Miner::start() {
  if (running_) return;
  running_ = true;
  reschedule();
}

void Miner::stop() {
  running_ = false;
  ++attempt_;  // kill any in-flight completion
}

void Miner::set_hashrate(double hashrate) {
  hashrate_ = hashrate;
  if (running_) reschedule();  // memoryless: resampling is exact
}

void Miner::reschedule() {
  ++attempt_;
  if (hashrate_ <= 0.0) return;
  auto& loop = node_.network().loop();
  // difficulty the next block will carry if found one target-interval ahead
  const double difficulty =
      node_.chain()
          .next_block_difficulty(node_.chain().head().header.timestamp + 1)
          .to_double();
  const double mean = difficulty / hashrate_;
  const double delay = rng_.exponential(mean);
  const std::uint64_t attempt = attempt_;
  loop.schedule(delay, [this, attempt] { on_found(attempt); });
}

void Miner::on_found(std::uint64_t attempt) {
  if (!running_ || attempt != attempt_) return;
  auto& chain = node_.chain();
  auto& loop = node_.network().loop();
  const auto now = genesis_epoch_ + static_cast<core::Timestamp>(loop.now());
  const core::Timestamp timestamp =
      std::max<core::Timestamp>(now, chain.head().header.timestamp + 1);
  const auto txs =
      node_.txpool().collect(max_txs_per_block, chain.head_state());
  const core::Block block = chain.produce_block(coinbase_, timestamp, txs,
                                                /*pow_nonce=*/rng_.next());
  ++blocks_mined_;
  node_.submit_block(block);
  // submit_block fires on_head_changed -> reschedule; if our block lost a
  // race and didn't become head, keep mining regardless
  if (running_) reschedule();
}

std::string to_string(PayoutScheme s) {
  switch (s) {
    case PayoutScheme::kProportional: return "proportional";
    case PayoutScheme::kPps: return "PPS";
    case PayoutScheme::kPplns: return "PPLNS";
  }
  return "unknown";
}

std::size_t PoolLedger::add_member(std::string name, double hashrate) {
  members_.push_back(Member{std::move(name), hashrate, 0.0, 0});
  round_shares_.push_back(0);
  unsettled_shares_.push_back(0);
  return members_.size() - 1;
}

double PoolLedger::total_hashrate() const noexcept {
  double total = 0;
  for (const auto& m : members_) total += m.hashrate;
  return total;
}

void PoolLedger::advance_round(double duration, Rng& rng) {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const double rate = members_[i].hashrate / share_difficulty_;
    const std::uint64_t shares = rng.poisson(rate * duration);
    if (shares == 0) continue;
    members_[i].shares_submitted += shares;
    round_shares_[i] += shares;
    unsettled_shares_[i] += shares;
    recent_shares_.emplace_back(i, shares);
    recent_total_ += shares;
    while (recent_total_ > pplns_window_ && recent_shares_.size() > 1) {
      const auto& [member, count] = recent_shares_.front();
      if (recent_total_ - count < pplns_window_) break;
      recent_total_ -= count;
      recent_shares_.pop_front();
    }
  }
}

void PoolLedger::on_block_found(double reward_ether) {
  switch (scheme_) {
    case PayoutScheme::kProportional: {
      std::uint64_t total = 0;
      for (auto s : round_shares_) total += s;
      if (total == 0) return;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        members_[i].paid_ether +=
            reward_ether * static_cast<double>(round_shares_[i]) /
            static_cast<double>(total);
        round_shares_[i] = 0;  // round closes with the block
      }
      break;
    }
    case PayoutScheme::kPps:
      // nothing at block time: shares are paid at expected value via
      // settle_pps; the pool keeps the block reward
      break;
    case PayoutScheme::kPplns: {
      if (recent_total_ == 0) return;
      for (const auto& [member, count] : recent_shares_) {
        members_[member].paid_ether += reward_ether *
                                       static_cast<double>(count) /
                                       static_cast<double>(recent_total_);
      }
      break;
    }
  }
}

void PoolLedger::settle_pps(double expected_value_per_share) {
  if (scheme_ != PayoutScheme::kPps) return;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    members_[i].paid_ether +=
        expected_value_per_share * static_cast<double>(unsettled_shares_[i]);
    unsettled_shares_[i] = 0;
  }
}

double PoolLedger::total_paid() const noexcept {
  double total = 0;
  for (const auto& m : members_) total += m.paid_ether;
  return total;
}

}  // namespace forksim::sim
