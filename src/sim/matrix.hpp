// Declarative failure-scenario matrix: composed partition / Byzantine /
// crash sweeps with availability SLOs and time-to-heal.
//
// The repo has every individual failure mode the paper implies — message
// faults, partitions, churn, Byzantine peers, cold restarts on corrupting
// disks — but a single sampled point says little about a failure episode.
// MatrixRunner sweeps byzantine_share x offline_share x partitioned_share
// x partition_duration (each axis a configurable list), composes every
// cell into one ChaosRunner run (fault injection + generalized cut +
// churn + AdversaryMix + durability knobs), and scores each run with the
// availability probe: per-phase availability against a quorum threshold,
// degraded time, and time-to-heal after the partition closes. One run,
// one heatmap-ready record per cell, one matrix fingerprint — the whole
// sweep replays bit-identically from the seed.
#pragma once

#include <iosfwd>

#include "sim/chaos.hpp"

namespace forksim::sim {

/// The swept axes. Every combination becomes one cell; empty lists are
/// invalid (there would be nothing to sweep).
struct MatrixAxes {
  std::vector<double> byzantine_share{0.0};
  std::vector<double> offline_share{0.0};
  std::vector<double> partitioned_share{0.0};
  std::vector<double> partition_duration{60.0};
  /// Client-mix axis: the fraction of nodes running the minority (buggy)
  /// client family. 0 (the default) leaves the clients layer entirely off
  /// for that cell; > 0 enables a geth/parity mix with the parity quirk's
  /// bug window spanning the cell's failure episode (onset at
  /// failure_start, patch at failure_end).
  std::vector<double> minority_share{0.0};
  /// Eclipse axis: sybil identities minted per victim. 0 (the default)
  /// leaves the eclipse layer entirely off for that cell; > 0 installs one
  /// defended sybil swarm (ChaosParams::eclipse, budget = the axis value,
  /// attack opening at failure_start) so the grid reads how discovery-layer
  /// pressure composes with the other failure modes.
  std::vector<double> eclipse_budget{0.0};

  std::size_t cell_count() const noexcept {
    return byzantine_share.size() * offline_share.size() *
           partitioned_share.size() * partition_duration.size() *
           minority_share.size() * eclipse_budget.size();
  }
};

/// One point in the sweep (the axis values of a cell).
struct MatrixCellSpec {
  double byzantine_share = 0.0;
  double offline_share = 0.0;
  double partitioned_share = 0.0;
  double partition_duration = 0.0;
  double minority_share = 0.0;
  double eclipse_budget = 0.0;
};

struct MatrixParams {
  /// Template every cell starts from. The axes overwrite the composed
  /// knobs (adversaries.fraction, churn_fraction + window, cut_* +
  /// partitioned_share) and force the availability probe on; everything
  /// else — scenario shape, message faults, durability, probe thresholds —
  /// carries through unchanged. base.probe supplies interval / quorum /
  /// lag / sustain; the phase window is set per cell.
  ChaosParams base;
  MatrixAxes axes;
  /// Sim-time the composed failure episode opens in every cell: the cut
  /// starts and the churn window opens here; both close partition_duration
  /// seconds later. One shared instant keeps phases comparable across the
  /// grid.
  double failure_start = 240.0;

  /// Throws std::invalid_argument on an empty axis, an out-of-range axis
  /// value, or an invalid base (ChaosParams::validate applied per cell).
  void validate() const;
};

struct MatrixCell {
  MatrixCellSpec spec;
  ChaosReport report;
};

struct MatrixReport {
  std::vector<MatrixCell> cells;
  /// Keccak over every cell's axes and run fingerprint: equal across two
  /// sweeps iff every composed run was bit-identical.
  Hash256 fingerprint;

  std::size_t converged_cells() const;
};

/// The per-cell composition, exposed for tests and for re-running one cell
/// standalone: axes overwrite the composed knobs, the probe is forced on
/// with the cell's phase window, everything else copies from `mp.base`.
ChaosParams compose_cell(const MatrixParams& mp, const MatrixCellSpec& spec);

class MatrixRunner {
 public:
  /// Validates eagerly: a typo'd axis fails here, not an hour into a sweep.
  explicit MatrixRunner(MatrixParams params);

  const MatrixParams& params() const noexcept { return params_; }
  /// Cell specs in sweep order (byzantine outermost, duration innermost).
  const std::vector<MatrixCellSpec>& specs() const noexcept { return specs_; }

  /// Drive every cell sequentially. With `progress` non-null, one line per
  /// finished cell is streamed to it (sweeps are minutes, not seconds).
  MatrixReport run(std::ostream* progress = nullptr);

 private:
  MatrixParams params_;
  std::vector<MatrixCellSpec> specs_;
};

}  // namespace forksim::sim
