#include "sim/txgen.hpp"

namespace forksim::sim {

TxGenerator::TxGenerator(std::vector<FullNode*> nodes,
                         std::vector<PrivateKey> accounts, Rng rng,
                         Options options)
    : nodes_(std::move(nodes)),
      accounts_(std::move(accounts)),
      nonces_(accounts_.size(), 0),
      rng_(rng),
      options_(options) {}

TxGenerator::TxGenerator(std::vector<FullNode*> nodes,
                         std::vector<PrivateKey> accounts, Rng rng)
    : TxGenerator(std::move(nodes), std::move(accounts), rng, Options()) {}

void TxGenerator::start() {
  if (running_ || nodes_.empty() || accounts_.empty()) return;
  running_ = true;
  schedule_next();
}

void TxGenerator::stop() {
  running_ = false;
  ++generation_;
}

void TxGenerator::schedule_next() {
  const std::uint64_t gen = generation_;
  nodes_.front()->network().loop().schedule(
      rng_.exponential(options_.mean_interval), [this, gen] {
        if (gen != generation_ || !running_) return;
        submit_one();
        schedule_next();
      });
}

void TxGenerator::submit_one() {
  const std::size_t who = rng_.uniform(accounts_.size());
  FullNode& entry = *nodes_[rng_.uniform(nodes_.size())];

  std::optional<Address> to;
  Bytes data;
  if (options_.contract_target && rng_.chance(options_.contract_fraction)) {
    to = *options_.contract_target;
  } else {
    to = derive_address(accounts_[(who + 1) % accounts_.size()]);
  }

  const core::Transaction tx = core::make_transaction(
      accounts_[who], nonces_[who], to, options_.transfer_value,
      options_.chain_id, core::gwei(20 + rng_.uniform(10)),
      options_.gas_limit, std::move(data));

  recent_.push_back(tx);  // every *generated* tx, accepted or not
  if (recent_.size() > kRecentCap)
    recent_.erase(recent_.begin(),
                  recent_.begin() + static_cast<std::ptrdiff_t>(
                                        recent_.size() - kRecentCap));

  const auto result = entry.submit_transaction(tx);
  if (result == core::PoolAddResult::kAdded ||
      result == core::PoolAddResult::kReplacedExisting) {
    ++nonces_[who];
    ++submitted_;
  } else {
    ++rejected_;
  }
}

}  // namespace forksim::sim
