#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>

namespace forksim::sim {

double WorkloadModel::ratio_at(double day) const {
  if (day <= params_.influx_start_day) return params_.ratio_early;
  if (day >= params_.influx_end_day) return params_.ratio_late;
  const double t = (day - params_.influx_start_day) /
                   (params_.influx_end_day - params_.influx_start_day);
  return params_.ratio_early + t * (params_.ratio_late - params_.ratio_early);
}

WorkloadModel::Day WorkloadModel::step(double day) {
  Day out;
  const double growth = std::exp(params_.growth_per_day * day);
  const double noise_etc = rng_.lognormal(0.0, params_.noise_sigma);
  const double noise_eth = rng_.lognormal(0.0, params_.noise_sigma);

  const double etc = params_.etc_base_txs * growth * noise_etc;
  const double eth = etc / noise_etc * ratio_at(day) * noise_eth;
  out.etc_txs = static_cast<std::uint64_t>(std::max(0.0, etc));
  out.eth_txs = static_cast<std::uint64_t>(std::max(0.0, eth));

  const double progress = std::clamp(day / params_.horizon_days, 0.0, 1.0);
  const double base_fraction =
      params_.contract_start +
      progress * (params_.contract_end - params_.contract_start);
  // both chains track the same secular trend with independent jitter; late
  // in the window ETH's contract share pulls slightly ahead (paper: the
  // fractions were "similar... until very recently")
  const double late_split =
      day > params_.influx_start_day
          ? 0.06 * (day - params_.influx_start_day) /
                (params_.horizon_days - params_.influx_start_day)
          : 0.0;
  out.eth_contract_fraction = std::clamp(
      base_fraction + late_split + rng_.normal(0.0, 0.015), 0.0, 0.95);
  out.etc_contract_fraction = std::clamp(
      base_fraction - late_split + rng_.normal(0.0, 0.015), 0.0, 0.95);
  return out;
}

}  // namespace forksim::sim
