// Mining agents.
//
// Proof-of-work is memoryless: with hashrate h against difficulty D, the
// time to find a block is Exponential(mean = D/h) regardless of how long
// you've already searched. The Miner models exactly that — when the chain
// head changes it simply resamples its completion time. This substitutes
// for Ethash (DESIGN.md substitution table) while preserving the block
// arrival statistics and the difficulty feedback loop the paper measures.
//
// MiningPool adds the paper's §3 "pool mining" layer: members submit shares
// proportional to hashrate; the pool wins blocks as one entity (its address
// is the block's coinbase — what Figure 5 counts) and splits rewards by a
// configurable payout scheme.
#pragma once

#include <string>

#include "sim/node.hpp"

namespace forksim::sim {

class Miner {
 public:
  /// `hashrate` is in hashes/second against the chain's difficulty units.
  Miner(FullNode& node, Address coinbase, double hashrate, Rng rng,
        core::Timestamp genesis_epoch = 0);

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  void set_hashrate(double hashrate);
  double hashrate() const noexcept { return hashrate_; }
  /// The node this miner submits blocks through (chaos harness pairs
  /// miners with their hosts when crashing/restarting nodes).
  const FullNode& node() const noexcept { return node_; }
  const Address& coinbase() const noexcept { return coinbase_; }
  std::uint64_t blocks_mined() const noexcept { return blocks_mined_; }

  /// Max transactions packed per block.
  std::size_t max_txs_per_block = 200;

 private:
  void reschedule();
  void on_found(std::uint64_t attempt);

  FullNode& node_;
  Address coinbase_;
  double hashrate_;
  Rng rng_;
  core::Timestamp genesis_epoch_;
  bool running_ = false;
  std::uint64_t attempt_ = 0;  // invalidates stale completion events
  std::uint64_t blocks_mined_ = 0;
};

enum class PayoutScheme {
  kProportional,  // reward split by shares in the current round
  kPps,           // pay-per-share at expected value (pool absorbs variance)
  kPplns,         // pay-per-last-N-shares
};

std::string to_string(PayoutScheme s);

/// Share-based payout bookkeeping for one pool. Decoupled from networking:
/// callers report rounds (elapsed time) and found blocks; the ledger tracks
/// every member's accrued reward so the ablation bench can compare payout
/// variance across schemes.
class PoolLedger {
 public:
  struct Member {
    std::string name;
    double hashrate = 0;     // relative share weight
    double paid_ether = 0;   // total accrued payout
    std::uint64_t shares_submitted = 0;
  };

  PoolLedger(PayoutScheme scheme, double share_difficulty,
             std::uint64_t pplns_window = 1000)
      : scheme_(scheme),
        share_difficulty_(share_difficulty),
        pplns_window_(pplns_window) {}

  std::size_t add_member(std::string name, double hashrate);
  const std::vector<Member>& members() const noexcept { return members_; }
  double total_hashrate() const noexcept;

  /// Advance one mining round of `duration` seconds: members produce shares
  /// (Poisson, rate = hashrate / share_difficulty).
  void advance_round(double duration, Rng& rng);

  /// The pool found a block worth `reward_ether`; distribute per the scheme.
  void on_block_found(double reward_ether);

  /// PPS pays continuously; call at round end to settle accrued share value.
  /// `expected_value_per_share` = share_difficulty / block_difficulty *
  /// block_reward.
  void settle_pps(double expected_value_per_share);

  double total_paid() const noexcept;

 private:
  PayoutScheme scheme_;
  double share_difficulty_;
  std::uint64_t pplns_window_;
  std::vector<Member> members_;
  /// Current round's shares per member (proportional scheme).
  std::vector<std::uint64_t> round_shares_;
  /// Sliding window of (member, shares) for PPLNS.
  std::deque<std::pair<std::size_t, std::uint64_t>> recent_shares_;
  std::uint64_t recent_total_ = 0;
  /// Unsettled shares for PPS.
  std::vector<std::uint64_t> unsettled_shares_;
};

}  // namespace forksim::sim
