// Byzantine adversary agents: hostile participants riding the same
// SimNet/FullNode machinery as honest nodes. Each adversary keeps its
// host's honest plumbing (discovery, handshakes, the DAO challenge, serving
// real blocks) so its sessions look legitimate, and injects attack traffic
// by sending raw wire messages to the host's active peers:
//
//   kInvalidForger  — pushes structurally/consensus-invalid blocks built on
//                     real ancestors at a configurable depth; the defect
//                     picks which validation stage the victim pays for
//   kWithholder     — advertises head hashes it never serves, stalling the
//                     victims' GetBlocks pipeline
//   kTxSpammer      — floods pools with admitted-but-worthless, duplicate,
//                     underpriced, and nonce-gapped transactions
//   kEquivocator    — announces conflicting siblings of the same parent to
//                     disjoint peer subsets
//
// The honest-node defenses these exercise live in sim/node.*
// (HardeningOptions), p2p/peers.* (scoring, token buckets), and
// core/txpool.* (eviction); bench/ablate_adversary.cpp measures them.
#pragma once

#include "obs/metrics.hpp"
#include "sim/node.hpp"

namespace forksim::sim {

enum class AdversaryKind {
  kInvalidForger,
  kWithholder,
  kTxSpammer,
  kEquivocator,
};

std::string_view to_string(AdversaryKind k);

/// Which defect a forged block carries — each targets a different stage of
/// the victim's ingress pipeline.
enum class ForgeDefect {
  /// Correct header and transactions root, garbage state root: the victim
  /// pays a full execution before the commitment check fails. The
  /// worst-case wasted work a forger can impose.
  kBadStateRoot,
  /// Difficulty that doesn't match the retarget rule: caught by the cheap
  /// header validation, no execution.
  kBadDifficulty,
  /// Oversized extra_data: a hardened victim rejects it in the structural
  /// precheck before any consensus rule runs; an un-hardened one executes
  /// the body first (the state root is garbage too) — the precheck's value
  /// in one defect.
  kBadStructure,
};

struct AdversaryOptions {
  AdversaryKind kind = AdversaryKind::kInvalidForger;
  /// Sim seconds between attack rounds.
  double interval = 10.0;
  /// Forger: defect and how many blocks below the host's head the forged
  /// block's parent sits.
  ForgeDefect defect = ForgeDefect::kBadStateRoot;
  core::BlockNumber forge_depth = 0;
  /// Forger: previously-forged blocks re-pushed per round (a hardened
  /// victim absorbs these from its known-invalid cache at zero cost).
  std::size_t forge_repush = 2;
  /// Spammer: transactions per round and distinct junk sender keys.
  std::size_t spam_batch = 48;
  std::size_t spam_accounts = 8;
  /// Equivocator: conflicting siblings announced per round.
  std::size_t equivocation_fanout = 6;
  /// Withholder: phantom hashes announced per round.
  std::size_t withhold_batch = 4;
};

struct AdversaryCounters {
  std::uint64_t rounds = 0;
  std::uint64_t blocks_forged = 0;
  std::uint64_t phantom_announcements = 0;
  std::uint64_t txs_spammed = 0;
  std::uint64_t equivocations = 0;
};

class Adversary {
 public:
  Adversary(FullNode& host, AdversaryOptions options, Rng rng);

  Adversary(const Adversary&) = delete;
  Adversary& operator=(const Adversary&) = delete;

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  FullNode& host() noexcept { return host_; }
  const AdversaryOptions& options() const noexcept { return options_; }
  const AdversaryCounters& counters() const noexcept { return counters_; }

  /// Register adversary.* counters in `reg`. Only attack runs call this, so
  /// honest registries (and their golden fingerprints) keep exactly the
  /// pre-existing metric set.
  void attach_telemetry(obs::Registry& reg);

 private:
  void tick();
  void schedule_next();
  std::vector<p2p::NodeId> targets() const;
  void send_raw(const p2p::NodeId& to, const p2p::Message& msg);

  void run_forger();
  void run_withholder();
  void run_spammer();
  void run_equivocator();

  core::Block forge_block();

  FullNode& host_;
  AdversaryOptions options_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  // invalidates pending ticks on stop()
  AdversaryCounters counters_;
  /// Recently forged blocks, kept for re-pushes (bounded ring).
  std::vector<core::Block> forged_;
  std::size_t repush_cursor_ = 0;
  std::vector<PrivateKey> spam_keys_;
  std::vector<std::uint64_t> spam_nonces_;
  std::vector<core::Transaction> last_fillers_;
  std::uint64_t spam_seq_ = 0;
  std::uint64_t forge_seq_ = 0;
  std::uint64_t phantom_seq_ = 0;
  obs::Counter* tm_rounds_ = nullptr;
  obs::Counter* tm_forged_ = nullptr;
  obs::Counter* tm_phantoms_ = nullptr;
  obs::Counter* tm_spam_ = nullptr;
  obs::Counter* tm_equivocations_ = nullptr;
};

}  // namespace forksim::sim
