// Byzantine adversary agents: hostile participants riding the same
// SimNet/FullNode machinery as honest nodes. Each adversary keeps its
// host's honest plumbing (discovery, handshakes, the DAO challenge, serving
// real blocks) so its sessions look legitimate, and injects attack traffic
// by sending raw wire messages to the host's active peers:
//
//   kInvalidForger  — pushes structurally/consensus-invalid blocks built on
//                     real ancestors at a configurable depth; the defect
//                     picks which validation stage the victim pays for
//   kWithholder     — advertises head hashes it never serves, stalling the
//                     victims' GetBlocks pipeline
//   kTxSpammer      — floods pools with admitted-but-worthless, duplicate,
//                     underpriced, and nonce-gapped transactions
//   kEquivocator    — announces conflicting siblings of the same parent to
//                     disjoint peer subsets
//
// The honest-node defenses these exercise live in sim/node.*
// (HardeningOptions), p2p/peers.* (scoring, token buckets), and
// core/txpool.* (eviction); bench/ablate_adversary.cpp measures them.
//
// EclipseAdversary (below) is the discovery-layer counterpart: instead of
// one hostile node it operates a swarm of minted sybil identities attacking
// a single victim's routing table and connection slots. Its defenses live
// in p2p/discovery.* (DiscoveryDefense), p2p/peers.* (inbound caps), and
// sim/node.* (EclipseDefenseOptions); bench/ablate_eclipse.cpp measures
// them.
#pragma once

#include <unordered_set>

#include "obs/metrics.hpp"
#include "sim/node.hpp"

namespace forksim::sim {

enum class AdversaryKind {
  kInvalidForger,
  kWithholder,
  kTxSpammer,
  kEquivocator,
};

std::string_view to_string(AdversaryKind k);

/// Which defect a forged block carries — each targets a different stage of
/// the victim's ingress pipeline.
enum class ForgeDefect {
  /// Correct header and transactions root, garbage state root: the victim
  /// pays a full execution before the commitment check fails. The
  /// worst-case wasted work a forger can impose.
  kBadStateRoot,
  /// Difficulty that doesn't match the retarget rule: caught by the cheap
  /// header validation, no execution.
  kBadDifficulty,
  /// Oversized extra_data: a hardened victim rejects it in the structural
  /// precheck before any consensus rule runs; an un-hardened one executes
  /// the body first (the state root is garbage too) — the precheck's value
  /// in one defect.
  kBadStructure,
};

struct AdversaryOptions {
  AdversaryKind kind = AdversaryKind::kInvalidForger;
  /// Sim seconds between attack rounds.
  double interval = 10.0;
  /// Forger: defect and how many blocks below the host's head the forged
  /// block's parent sits.
  ForgeDefect defect = ForgeDefect::kBadStateRoot;
  core::BlockNumber forge_depth = 0;
  /// Forger: previously-forged blocks re-pushed per round (a hardened
  /// victim absorbs these from its known-invalid cache at zero cost).
  std::size_t forge_repush = 2;
  /// Spammer: transactions per round and distinct junk sender keys.
  std::size_t spam_batch = 48;
  std::size_t spam_accounts = 8;
  /// Equivocator: conflicting siblings announced per round.
  std::size_t equivocation_fanout = 6;
  /// Withholder: phantom hashes announced per round.
  std::size_t withhold_batch = 4;
};

struct AdversaryCounters {
  std::uint64_t rounds = 0;
  std::uint64_t blocks_forged = 0;
  std::uint64_t phantom_announcements = 0;
  std::uint64_t txs_spammed = 0;
  std::uint64_t equivocations = 0;
};

class Adversary {
 public:
  Adversary(FullNode& host, AdversaryOptions options, Rng rng);

  Adversary(const Adversary&) = delete;
  Adversary& operator=(const Adversary&) = delete;

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  FullNode& host() noexcept { return host_; }
  const AdversaryOptions& options() const noexcept { return options_; }
  const AdversaryCounters& counters() const noexcept { return counters_; }

  /// Register adversary.* counters in `reg`. Only attack runs call this, so
  /// honest registries (and their golden fingerprints) keep exactly the
  /// pre-existing metric set.
  void attach_telemetry(obs::Registry& reg);

 private:
  void tick();
  void schedule_next();
  std::vector<p2p::NodeId> targets() const;
  void send_raw(const p2p::NodeId& to, const p2p::Message& msg);

  void run_forger();
  void run_withholder();
  void run_spammer();
  void run_equivocator();

  core::Block forge_block();

  FullNode& host_;
  AdversaryOptions options_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  // invalidates pending ticks on stop()
  AdversaryCounters counters_;
  /// Recently forged blocks, kept for re-pushes (bounded ring).
  std::vector<core::Block> forged_;
  std::size_t repush_cursor_ = 0;
  std::vector<PrivateKey> spam_keys_;
  std::vector<std::uint64_t> spam_nonces_;
  std::vector<core::Transaction> last_fillers_;
  std::uint64_t spam_seq_ = 0;
  std::uint64_t forge_seq_ = 0;
  std::uint64_t phantom_seq_ = 0;
  obs::Counter* tm_rounds_ = nullptr;
  obs::Counter* tm_forged_ = nullptr;
  obs::Counter* tm_phantoms_ = nullptr;
  obs::Counter* tm_spam_ = nullptr;
  obs::Counter* tm_equivocations_ = nullptr;
};

// ------------------------------------------------------------------ eclipse

struct EclipseOptions {
  /// The node under attack.
  p2p::NodeId victim;
  /// Honest nodes whose inbound slots the swarm also floods — the victim's
  /// bootstrap seeds, so its outbound dials bounce with kTooManyPeers.
  std::vector<p2p::NodeId> slot_targets;
  /// Sybil identities minted against the victim's buckets.
  std::size_t sybil_budget = 32;
  /// Sim seconds between attack rounds.
  double interval = 2.0;
  /// Attack rounds between engagement resets: the swarm re-floods Status
  /// at targets this often, re-establishing any session the victim reaped.
  std::uint64_t reengage_rounds = 8;
};

struct EclipseCounters {
  std::uint64_t rounds = 0;
  /// Ping / unsolicited-Neighbors messages poisoning the victim's table.
  std::uint64_t table_floods = 0;
  /// Status handshakes pushed at the victim and the slot targets.
  std::uint64_t status_floods = 0;
  /// FIND_NODE queries answered with sybil-only candidate sets.
  std::uint64_t lookups_answered = 0;
  /// GetBlocks requests silently dropped (the starvation half of the
  /// attack: sybil peers never serve a block).
  std::uint64_t withheld_requests = 0;
};

/// A sybil swarm eclipsing one victim. The agent mints `sybil_budget`
/// NodeIds keccak-ground into the victim's near buckets (XOR-closer than
/// any random honest id, so the victim's own closest()-ordered dialer
/// prefers them), attaches each as a live transport on the host's network,
/// floods Ping/Neighbors to poison the table, answers lookups with only
/// sybil ids, pushes handshakes to monopolize connection slots at the
/// victim and its seeds, and withholds every block. Minting and attack
/// traffic are pure keccak + schedule — the agent draws no Rng at all, so
/// eclipse-free configurations replay bit-identically.
class EclipseAdversary {
 public:
  /// `host` supplies the network, event loop, and the chain whose genesis
  /// the sybils impersonate; it keeps behaving honestly under its own id.
  EclipseAdversary(FullNode& host, EclipseOptions options);
  ~EclipseAdversary();

  EclipseAdversary(const EclipseAdversary&) = delete;
  EclipseAdversary& operator=(const EclipseAdversary&) = delete;

  /// Attach the sybil transports and start attack rounds.
  void start();
  /// Detach every sybil and stop.
  void stop();
  bool running() const noexcept { return running_; }

  /// Forget every engagement and push fresh handshakes immediately (not at
  /// the next tick). The runner calls this when it reboots a victim: the
  /// canonical eclipse lands at (re)start, when the victim's slots are
  /// empty — the swarm must claim them before any honest dial does.
  void reengage();

  FullNode& host() noexcept { return host_; }
  const EclipseOptions& options() const noexcept { return options_; }
  const EclipseCounters& counters() const noexcept { return counters_; }
  const std::vector<p2p::NodeId>& sybils() const noexcept { return sybils_; }
  bool is_sybil(const p2p::NodeId& id) const {
    return sybil_index_.contains(id);
  }

  /// Register adversary.eclipse.* counters (attack runs only, like
  /// Adversary::attach_telemetry).
  void attach_telemetry(obs::Registry& reg);

  /// Deterministic sybil minting, exposed for tests: grind a keccak nonce
  /// until keccak("forksim/sybil" || victim || k || nonce) lands in bucket
  /// 240 + (k % 8) of the victim's table. A random honest id sits in
  /// bucket ~255; one below 248 is a ~2^-8 event, so every minted id is
  /// XOR-closer to the victim than essentially all honest nodes.
  static p2p::NodeId mint_sybil(const p2p::NodeId& victim, std::uint64_t k);

 private:
  void tick();
  void schedule_next();
  void on_sybil_message(std::size_t index, const p2p::NodeId& from,
                        const Bytes& wire);
  void send_from(const p2p::NodeId& sybil, const p2p::NodeId& to,
                 const p2p::Message& msg);
  /// Handshake-flood `target` from sybil `index` unless already engaged.
  void push_handshake(std::size_t index, const p2p::NodeId& target);
  p2p::Status crafted_status() const;
  std::vector<p2p::NodeId> sybils_closest_to(const p2p::NodeId& target) const;

  FullNode& host_;
  EclipseOptions options_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  // invalidates pending ticks on stop()
  EclipseCounters counters_;
  std::vector<p2p::NodeId> sybils_;
  std::unordered_map<p2p::NodeId, std::size_t, p2p::NodeIdHasher>
      sybil_index_;
  /// Per-sybil set of peers this sybil already pushed (or answered) a
  /// Status to. Gates the handshake flood — and, critically, stops a sybil
  /// from answering Status with Status forever (the re-handshake path on
  /// an active session would echo indefinitely). Cleared every
  /// `reengage_rounds` so reaped sessions get re-established.
  std::vector<std::unordered_set<p2p::NodeId, p2p::NodeIdHasher>> engaged_;
  obs::Counter* tm_rounds_ = nullptr;
  obs::Counter* tm_table_floods_ = nullptr;
  obs::Counter* tm_status_floods_ = nullptr;
  obs::Counter* tm_lookups_ = nullptr;
  obs::Counter* tm_withheld_ = nullptr;
};

}  // namespace forksim::sim
