#include "sim/matrix.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>
#include <string>

#include "crypto/keccak.hpp"

namespace forksim::sim {

namespace {

void require_axis(const std::vector<double>& axis, const char* name,
                  bool is_share) {
  if (axis.empty())
    throw std::invalid_argument(std::string("MatrixAxes::") + name +
                                " is empty: nothing to sweep");
  for (double v : axis) {
    if (is_share ? !(v >= 0.0 && v <= 1.0) : !(v >= 0.0))
      throw std::invalid_argument(
          std::string("MatrixAxes::") + name + " value " + std::to_string(v) +
          (is_share ? " outside [0, 1]" : " is negative"));
  }
}

}  // namespace

void MatrixParams::validate() const {
  require_axis(axes.byzantine_share, "byzantine_share", /*is_share=*/true);
  require_axis(axes.offline_share, "offline_share", /*is_share=*/true);
  require_axis(axes.partitioned_share, "partitioned_share",
               /*is_share=*/true);
  require_axis(axes.partition_duration, "partition_duration",
               /*is_share=*/false);
  require_axis(axes.minority_share, "minority_share", /*is_share=*/true);
  require_axis(axes.eclipse_budget, "eclipse_budget", /*is_share=*/false);
  if (!(failure_start >= 0.0))
    throw std::invalid_argument("MatrixParams::failure_start must be >= 0");
  // every composed cell must be a valid ChaosParams; checking the extreme
  // corner of each axis up front covers the whole grid (composition is
  // monotone in the axis values)
  MatrixCellSpec corner;
  for (double b : axes.byzantine_share)
    corner.byzantine_share = std::max(corner.byzantine_share, b);
  for (double o : axes.offline_share)
    corner.offline_share = std::max(corner.offline_share, o);
  for (double p : axes.partitioned_share)
    corner.partitioned_share = std::max(corner.partitioned_share, p);
  for (double d : axes.partition_duration)
    corner.partition_duration = std::max(corner.partition_duration, d);
  for (double m : axes.minority_share)
    corner.minority_share = std::max(corner.minority_share, m);
  for (double e : axes.eclipse_budget)
    corner.eclipse_budget = std::max(corner.eclipse_budget, e);
  compose_cell(*this, corner).validate();
}

ChaosParams compose_cell(const MatrixParams& mp, const MatrixCellSpec& spec) {
  ChaosParams p = mp.base;
  const double failure_end = mp.failure_start + spec.partition_duration;

  // Byzantine axis: that share of the population turns hostile, attacking
  // from the moment the episode opens (hardening switches on inside
  // ChaosRunner whenever the fraction is positive).
  p.adversaries.fraction = spec.byzantine_share;
  if (spec.byzantine_share > 0) p.adversaries.start = mp.failure_start;

  // Offline axis: seeded crashes inside the episode window. Whether a
  // restart is warm or cold (and how faulty the disk is) carries through
  // from the base durability knobs.
  p.churn_fraction = spec.offline_share;
  p.churn_start = mp.failure_start;
  p.churn_end = failure_end;

  // Partition axis: cut that share of the nodes off for the duration;
  // share zero disables the cut entirely (no draws, no scheduled heals).
  p.partitioned_share = spec.partitioned_share;
  if (spec.partitioned_share > 0) {
    p.cut_start = mp.failure_start;
    p.cut_duration = spec.partition_duration;
  } else {
    p.cut_start = -1.0;
  }

  // Client-mix axis: that share of the population runs the minority
  // (buggy) family, with the quirk's bug window spanning the failure
  // episode — the hotfix ships when the episode closes. Share zero leaves
  // the layer off entirely (no draws, no overlay, fingerprints unchanged).
  if (spec.minority_share > 0) {
    p.scenario.clients.enabled = true;
    p.scenario.clients.mix = {
        {ClientFamily::kGeth, 1.0 - spec.minority_share},
        {ClientFamily::kParity, spec.minority_share}};
    p.scenario.clients.buggy_family = ClientFamily::kParity;
    p.scenario.clients.onset_time = mp.failure_start;
    p.scenario.clients.patch_time = failure_end;
  }

  // Eclipse axis: one defended sybil swarm of that budget attacking from
  // the moment the episode opens. Budget zero leaves the layer off (no
  // victims, no draws, fingerprints unchanged).
  if (spec.eclipse_budget > 0) {
    p.eclipse.budget = static_cast<std::size_t>(spec.eclipse_budget);
    p.eclipse.victims = 1;
    p.eclipse.defenses = true;
    p.eclipse.start = mp.failure_start;
  }

  // Every cell is scored by the availability probe over the same phase
  // window, so pre/during/post read across the grid.
  p.probe.enabled = true;
  p.probe.failure_start = mp.failure_start;
  p.probe.failure_end = failure_end;
  return p;
}

MatrixRunner::MatrixRunner(MatrixParams params) : params_(std::move(params)) {
  params_.validate();
  specs_.reserve(params_.axes.cell_count());
  for (double b : params_.axes.byzantine_share)
    for (double o : params_.axes.offline_share)
      for (double p : params_.axes.partitioned_share)
        for (double d : params_.axes.partition_duration)
          for (double m : params_.axes.minority_share)
            for (double e : params_.axes.eclipse_budget)
              specs_.push_back({b, o, p, d, m, e});
}

std::size_t MatrixReport::converged_cells() const {
  std::size_t n = 0;
  for (const MatrixCell& c : cells) n += c.report.converged;
  return n;
}

MatrixReport MatrixRunner::run(std::ostream* progress) {
  MatrixReport report;
  report.cells.reserve(specs_.size());

  Keccak256 h;
  h.update(std::string_view("forksim/matrix-fingerprint"));
  const auto fold = [&h](std::uint64_t v) {
    const auto be = be_fixed64(v);
    h.update(BytesView(be.data(), be.size()));
  };
  const auto fx = [](double v) {
    return static_cast<std::uint64_t>(std::llround(v * 1e6));
  };

  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const MatrixCellSpec& spec = specs_[i];
    ChaosRunner runner(compose_cell(params_, spec));
    MatrixCell cell{spec, runner.run()};

    fold(fx(spec.byzantine_share));
    fold(fx(spec.offline_share));
    fold(fx(spec.partitioned_share));
    fold(fx(spec.partition_duration));
    // folded only when the axis is active, so legacy four-axis sweeps
    // keep their pinned fingerprints byte-identical
    if (spec.minority_share > 0) fold(fx(spec.minority_share));
    if (spec.eclipse_budget > 0) fold(fx(spec.eclipse_budget));
    h.update(cell.report.fingerprint.view());

    if (progress) {
      const AvailabilityStats& a = cell.report.availability;
      *progress << "cell " << (i + 1) << "/" << specs_.size() << "  byz="
                << spec.byzantine_share << " off=" << spec.offline_share
                << " part=" << spec.partitioned_share << " dur="
                << spec.partition_duration << " min="
                << spec.minority_share << " ecl="
                << spec.eclipse_budget << "  -> "
                << (cell.report.converged ? "converged" : "NO CONVERGENCE")
                << ", avail pre/during/post = " << a.pre << "/"
                << a.during_failure << "/" << a.post << ", heal "
                << a.time_to_heal << " s\n";
    }
    report.cells.push_back(std::move(cell));
  }
  report.fingerprint = h.digest();
  return report;
}

}  // namespace forksim::sim
