// Block-granular chain process for long-horizon simulations.
//
// The full-node network (node.hpp) is protocol-complete but simulates every
// message; reproducing the paper's nine-month figures needs ~1.7M blocks
// per chain, so the figure benches run on this reduced model instead: block
// arrivals are sampled directly from the mining race (Exponential with mean
// difficulty/hashrate — exact for PoW) while the difficulty evolves through
// the *real* consensus rule (core::next_difficulty). Everything the paper
// measures at block granularity — difficulty response, block intervals,
// blocks/hour, pool win counts — is therefore driven by the same protocol
// math as the full node.
//
// One approximation: a block's difficulty depends on its own timestamp, so
// the race target moves while miners search. We sample the interval against
// the difficulty at (parent + 1 s) and then finalize the difficulty at the
// sampled timestamp, exactly as a miner re-targets its template; the target
// drifts at most 1/2048-per-notch during a round, which is negligible.
#pragma once

#include <vector>

#include "core/difficulty.hpp"
#include "support/rng.hpp"

namespace forksim::sim {

struct BlockEvent {
  double time = 0;      // seconds since simulation start
  core::BlockNumber number = 0;
  double difficulty = 0;
  double interval = 0;  // seconds since previous block
  std::size_t pool = 0; // index of the winning pool (weights vector)
};

class ChainProcess {
 public:
  ChainProcess(core::ChainConfig config, U256 initial_difficulty,
               double initial_hashrate);

  const core::ChainConfig& config() const noexcept { return config_; }

  void set_hashrate(double hashes_per_second) noexcept {
    hashrate_ = hashes_per_second;
  }
  double hashrate() const noexcept { return hashrate_; }

  /// Relative weights used to pick each block's winning pool.
  void set_pool_weights(std::vector<double> weights) {
    pool_weights_ = std::move(weights);
  }
  const std::vector<double>& pool_weights() const noexcept {
    return pool_weights_;
  }

  const U256& difficulty() const noexcept { return difficulty_; }
  double time() const noexcept { return time_; }
  core::BlockNumber height() const noexcept { return number_; }

  /// Override the retarget rule (ablation bench); defaults to the real one.
  void set_retarget_rule(core::RetargetRule rule) noexcept { rule_ = rule; }

  /// Mine the next block: advances time, difficulty, and height.
  BlockEvent mine_next(Rng& rng);

  /// Mine until the chain clock passes `until_time`; invokes `sink` per
  /// block. Returns blocks mined.
  template <typename Sink>
  std::size_t mine_until(double until_time, Rng& rng, Sink&& sink) {
    std::size_t n = 0;
    while (time_ < until_time) {
      if (hashrate_ <= 0.0) {  // nobody mining: stall to the horizon
        time_ = until_time;
        break;
      }
      sink(mine_next(rng));
      ++n;
    }
    return n;
  }

 private:
  core::ChainConfig config_;
  core::RetargetRule rule_ = core::RetargetRule::kHomestead;
  U256 difficulty_;
  double hashrate_;
  double time_ = 0;
  core::BlockNumber number_ = 0;
  core::Timestamp parent_timestamp_ = 0;
  std::vector<double> pool_weights_;
  // epoch-average ablation bookkeeping
  double window_start_time_ = 0;
  core::BlockNumber window_start_number_ = 0;
  static constexpr core::BlockNumber kEpochLength = 128;
};

/// Exchange-rate process: geometric Brownian motion stepped daily, with
/// scheduled multiplicative shocks (the Zcash launch, the March 2017
/// speculation rally).
class MarketModel {
 public:
  struct Shock {
    double day;
    double factor;  // price multiplier applied that day
  };

  MarketModel(double initial_price_usd, double daily_drift,
              double daily_volatility)
      : price_(initial_price_usd),
        drift_(daily_drift),
        vol_(daily_volatility) {}

  void add_shock(double day, double factor) {
    shocks_.push_back({day, factor});
  }

  /// Advance one day.
  void step(double day, Rng& rng);

  double price() const noexcept { return price_; }

 private:
  double price_;
  double drift_;
  double vol_;
  std::vector<Shock> shocks_;
};

/// Rational miner migration: mobile hashpower flows toward the chain with
/// the better expected USD-per-hash, with inertia; loyal floors never move
/// (ideological miners — the reason ETC survived at all). An optional
/// external sink (Zcash) borrows mobile hashpower for a window of days.
class MigrationModel {
 public:
  struct Params {
    /// Fraction of the mobile pool that can switch per day.
    double mobility = 0.25;
    /// Hashpower that never leaves its chain (ideological miners).
    double loyal_a = 0.0;
    double loyal_b = 0.0;
    /// External sink window: [start_day, end_day) drains up to
    /// `sink_fraction` of mobile hashpower.
    double sink_start_day = -1;
    double sink_end_day = -1;
    double sink_fraction = 0.0;
  };

  MigrationModel(double hashrate_a, double hashrate_b, Params params)
      : a_(hashrate_a), b_(hashrate_b), params_(params) {}

  /// One daily step. `profit_a`/`profit_b` are expected USD per hash.
  void step(double day, double profit_a, double profit_b, Rng& rng);

  double hashrate_a() const noexcept { return a_; }
  double hashrate_b() const noexcept { return b_; }
  double parked_in_sink() const noexcept { return sink_from_a_ + sink_from_b_; }

 private:
  double a_;
  double b_;
  Params params_;
  double sink_from_a_ = 0;  // hashpower currently parked in the sink
  double sink_from_b_ = 0;
};

/// Expected hashes a miner must compute to earn one USD — the paper's
/// Figure 3 metric: difficulty / (block_reward_ether * price_usd)... i.e.
/// hashes-per-ether divided by USD-per-ether.
double hashes_per_usd(double difficulty, double block_reward_ether,
                      double price_usd);

}  // namespace forksim::sim
