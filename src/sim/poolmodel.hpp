// Mining-pool population dynamics — the paper's Figure 5.
//
// Each chain hosts a population of pools holding fractions of the chain's
// hashpower. Individual miners (modelled as a continuum) churn between
// pools daily with preferential attachment: a detaching miner re-attaches
// to a pool with probability proportional to size^alpha. With alpha > 1
// small fragmented populations slowly coalesce toward the concentrated,
// Zipf-like distribution large mining ecosystems exhibit — the mechanism
// the paper speculates drives ETC's pools to "the same relative ratios" as
// ETH's (§3, pool mining).
#pragma once

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace forksim::sim {

struct PoolDynamicsParams {
  /// Fraction of total hashpower that detaches and re-chooses daily.
  double churn = 0.04;
  /// Preferential-attachment exponent (>1 concentrates, 1 neutral).
  double alpha = 1.25;
  /// Daily probability a brand-new small pool enters.
  double entry_prob = 0.02;
  double entry_size = 0.005;  // entrant's share of total
  /// Pools below this share are wound down (members redistributed).
  double exit_threshold = 0.002;
  /// Soft ceiling on any single pool's share: re-attaching miners shy away
  /// from pools approaching this size (the well-documented aversion to
  /// near-majority pools — large Ethereum pools have publicly asked miners
  /// to leave when nearing 50 %). This is what makes both ecosystems settle
  /// at similar, sub-majority top-pool shares instead of a monopoly.
  double concentration_cap = 0.34;
};

class PoolPopulation {
 public:
  PoolPopulation(std::vector<double> weights, PoolDynamicsParams params)
      : weights_(std::move(weights)), params_(params) {
    normalize();
  }

  /// The stable pre-fork ETH pool distribution (top-heavy, ~dozen pools).
  static PoolPopulation eth_like(PoolDynamicsParams params);
  /// Post-fork ETC: many small pools of comparable size.
  static PoolPopulation fragmented(std::size_t pools,
                                   PoolDynamicsParams params, Rng& rng);

  const std::vector<double>& weights() const noexcept { return weights_; }
  std::size_t pool_count() const noexcept { return weights_.size(); }

  /// One day of churn.
  void step_day(Rng& rng);

  /// Update the dynamics parameters (ecosystems mature: churn and the
  /// attachment exponent drift toward the stable, ETH-like values).
  void set_params(const PoolDynamicsParams& params) { params_ = params; }
  const PoolDynamicsParams& params() const noexcept { return params_; }

  /// Combined share of the top n pools (Figure 5's series).
  double top_share(std::size_t n) const;

  /// Sample a block winner.
  std::size_t sample_winner(Rng& rng) {
    return rng.weighted_index(weights_);
  }

 private:
  void normalize();

  std::vector<double> weights_;
  PoolDynamicsParams params_;
};

}  // namespace forksim::sim
