// Client-diversity substrate: heterogeneous client families with gossip /
// timing profiles and an injectable consensus bug.
//
// The paper's partition was an *intentional* validity split; the modern
// replay ("Unveiling Ethereum's P2P Network", and the 2020 OpenEthereum
// incident) is a split caused by implementation divergence — a minority
// client family whose validation rules disagree with the majority's inside
// a bug window, until a hotfix ships. This layer models exactly that:
//
//   - ClientProfile: per-family gossip fanout and maintenance-timing
//     multipliers (clients really do differ here), plus whether the family
//     carries the injected validation quirk.
//   - ClientMixParams: a seeded client-mix distribution assigned per node,
//     a [onset, patch_time) bug window, and a deterministic per-block
//     trigger predicate.
//   - QuirkRuleSet: the core::ValidationRuleSet implementation that flips
//     an otherwise-valid header verdict to kDisputed while the bug is
//     live — the consensus-bug fault injector, analogous to db::SimDisk
//     for storage faults.
//
// Strictly opt-in: with ClientMixParams::enabled false (the default),
// nothing here consumes Rng draws, installs overlays, or registers
// telemetry, so client-mix-off runs replay bit-identically to builds
// without this layer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/chain.hpp"
#include "support/rng.hpp"

namespace forksim::sim {

/// Client implementation families (named after the real ecosystem's
/// majority/minority split; behavior differences live in ClientProfile).
enum class ClientFamily : std::uint8_t {
  kGeth = 0,
  kParity = 1,
  kBesu = 2,
  kNethermind = 3,
};
inline constexpr std::size_t kClientFamilyCount = 4;

const char* to_string(ClientFamily family);

/// Per-family behavior profile: multipliers applied to a node's gossip
/// fanout exponent and maintenance tick interval (1.0 = the baseline
/// node). Kept mild — families differ in timing and fanout, not protocol.
struct ClientProfile {
  ClientFamily family = ClientFamily::kGeth;
  double fanout_multiplier = 1.0;  // scales GossipPolicy::push_exponent
  double tick_multiplier = 1.0;    // scales NodeOptions::tick_interval
};

/// The built-in profile for a family.
ClientProfile profile_for(ClientFamily family);

/// One slice of the client-mix distribution.
struct ClientShare {
  ClientFamily family = ClientFamily::kGeth;
  double fraction = 0.0;
};

/// Client-mix + consensus-bug configuration (carried by ScenarioParams).
struct ClientMixParams {
  bool enabled = false;
  /// The seeded per-node family distribution; fractions must sum to 1.
  /// The default mirrors the 2020 incident shape: a geth majority with a
  /// parity minority.
  std::vector<ClientShare> mix{{ClientFamily::kGeth, 0.75},
                               {ClientFamily::kParity, 0.25}};
  /// The family carrying the injected validation quirk.
  ClientFamily buggy_family = ClientFamily::kParity;
  /// The bug window: the quirk is live for headers at height >=
  /// onset_height, between sim-time onset_time (inclusive) and patch_time
  /// (exclusive). patch_time < 0 means the hotfix never ships.
  core::BlockNumber onset_height = 0;
  double onset_time = 0.0;
  double patch_time = -1.0;
  /// Deterministic trigger: a header trips the bug iff its hash (last 8
  /// bytes, big-endian) % trigger_modulus == trigger_residue. modulus 1
  /// disputes every in-window block (the 2020 "minority client stalls"
  /// shape); larger values dispute roughly one block in N.
  std::uint64_t trigger_modulus = 16;
  std::uint64_t trigger_residue = 0;

  /// Throws std::invalid_argument naming the offending field: inverted bug
  /// window (patch before onset), mix fractions outside [0,1] or not
  /// summing to 1, an empty mix, an unknown family, residue >= modulus,
  /// or a zero modulus. No-op while disabled (a latent config is allowed
  /// to be nonsense until someone switches it on — matching the cut_start
  /// convention would hide typos, so we validate eagerly once enabled).
  void validate() const;
};

/// Seeded per-node family assignment: one weighted draw per node from
/// `mix` (exactly `n` draws — callers rely on this for draw-order
/// stability). Fractions are used as weights.
std::vector<ClientFamily> assign_client_families(const ClientMixParams& mix,
                                                 std::size_t n, Rng& rng);

/// The consensus-bug fault injector: a ValidationRuleSet that flips an
/// otherwise-valid header verdict to kDisputed while the bug window is
/// live. One instance is shared (const) by every buggy-family node in a
/// scenario; `now` supplies sim time (the core chain stays clock-free).
/// apply_patch() is the hotfix: from then on every verdict passes through
/// untouched, regardless of the window.
class QuirkRuleSet : public core::ValidationRuleSet {
 public:
  QuirkRuleSet(ClientMixParams config, std::function<double()> now);

  core::ImportResult review_header(const core::BlockHeader& header,
                                   const Hash256& hash,
                                   core::ImportResult builtin) const override;

  /// Would the quirk dispute `hash` at height `number` right now? (The
  /// trigger predicate and window check, exposed for tests.)
  bool would_dispute(const Hash256& hash, core::BlockNumber number) const;

  /// The hotfix: permanently disables the quirk.
  void apply_patch() noexcept { patched_ = true; }
  bool patched() const noexcept { return patched_; }

  /// Verdicts this rule set overturned (kImported -> kDisputed).
  std::uint64_t disputes() const noexcept { return disputes_; }

  const ClientMixParams& config() const noexcept { return config_; }

 private:
  ClientMixParams config_;
  std::function<double()> now_;
  bool patched_ = false;
  mutable std::uint64_t disputes_ = 0;
};

}  // namespace forksim::sim
