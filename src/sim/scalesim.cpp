#include "sim/scalesim.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/keccak.hpp"
#include "support/stats.hpp"

namespace forksim::sim {

namespace {

void require_non_negative(double v, const char* field) {
  if (v < 0.0)
    throw std::invalid_argument("ScaleParams: " + std::string(field) +
                                " is negative (" + std::to_string(v) + ")");
}

void require_prob(double v, const char* field) {
  if (v < 0.0 || v > 1.0)
    throw std::invalid_argument("ScaleParams: " + std::string(field) + " (" +
                                std::to_string(v) + ") outside [0, 1]");
}

}  // namespace

void ScaleParams::validate() const {
  if (nodes < 2)
    throw std::invalid_argument("ScaleParams: nodes must be >= 2, got " +
                                std::to_string(nodes));
  topology.validate(nodes);
  if (geo.enabled) geo.validate();
  require_non_negative(uniform_base, "uniform_base");
  require_non_negative(jitter_scale, "jitter_scale");
  require_non_negative(jitter_sigma, "jitter_sigma");
  require_non_negative(relay_delay, "relay_delay");
  if (miners == 0 || miners > nodes)
    throw std::invalid_argument(
        "ScaleParams: miners (" + std::to_string(miners) +
        ") must be in [1, nodes=" + std::to_string(nodes) + "]");
  if (!(block_interval > 0.0))
    throw std::invalid_argument("ScaleParams: block_interval must be > 0, "
                                "got " + std::to_string(block_interval));
  require_non_negative(duration, "duration");
  // negative cut_start is the documented "no cut" flag
  require_non_negative(cut_duration, "cut_duration");
  require_prob(cut_fraction, "cut_fraction");
}

ScaleSim::ScaleSim(ScaleParams params)
    : params_(std::move(params)), rng_(params_.seed) {
  params_.validate();
  const std::size_t n = params_.nodes;
  topo_ = p2p::generate_topology(params_.topology, n);
  if (params_.geo.enabled) geo_.emplace(params_.geo, n);

  head_block_.assign(n, kGenesis);
  head_height_.assign(n, 0);
  words_per_block_ = (n + 63) / 64;

  // miners: evenly spread node indices (deterministic; with geo enabled
  // the seeded placement makes their regions proportional to population)
  miner_nodes_.reserve(params_.miners);
  for (std::size_t m = 0; m < params_.miners; ++m)
    miner_nodes_.push_back(static_cast<std::uint32_t>(m * n / params_.miners));
  miner_mined_.assign(params_.miners, 0);
  miner_wins_.assign(params_.miners, 0);

  // partition membership: a seeded shuffle's prefix, drawn only when the
  // cut is enabled so cut-free runs consume identical rng streams
  cut_side_.assign(n, 0);
  if (params_.cut_start >= 0.0 && params_.cut_duration > 0.0 &&
      params_.cut_fraction > 0.0) {
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = rng_.uniform(i);
      std::swap(order[i - 1], order[j]);
    }
    cut_size_ = static_cast<std::size_t>(
        static_cast<double>(n) * params_.cut_fraction + 0.5);
    cut_size_ = std::min(cut_size_, n);
    for (std::size_t i = 0; i < cut_size_; ++i) cut_side_[order[i]] = 1;
  }
}

double ScaleSim::link_delay(std::uint32_t a, std::uint32_t b) {
  double base;
  double scale;
  double sigma;
  if (geo_) {
    base = geo_->base_delay(a, b);
    scale = geo_->params().jitter_scale;
    sigma = geo_->params().jitter_sigma;
  } else {
    base = params_.uniform_base;
    scale = params_.jitter_scale;
    sigma = params_.jitter_sigma;
  }
  const double jitter = scale > 0 ? rng_.lognormal(0.0, sigma) * scale : 0.0;
  return base + jitter + params_.relay_delay;
}

bool ScaleSim::cut_severs(std::uint32_t a, std::uint32_t b,
                          double now) const {
  if (cut_size_ == 0) return false;
  if (now < params_.cut_start ||
      now >= params_.cut_start + params_.cut_duration)
    return false;
  return cut_side_[a] != cut_side_[b];
}

std::uint32_t ScaleSim::new_block(std::uint32_t parent, std::uint32_t height,
                                  std::uint32_t miner, double now) {
  const auto idx = static_cast<std::uint32_t>(blocks_.size());
  blocks_.push_back(BlockRec{parent, height, miner, now});
  seen_.resize(seen_.size() + words_per_block_, 0);
  return idx;
}

void ScaleSim::on_mine(double now) {
  // winner of this round of the race (equal hashpower per miner)
  const auto m =
      static_cast<std::uint32_t>(rng_.uniform(miner_nodes_.size()));
  const std::uint32_t host = miner_nodes_[m];
  const std::uint32_t parent = head_block_[host];
  const std::uint32_t height = head_height_[host] + 1;
  const std::uint32_t block = new_block(parent, height, host, now);
  ++miner_mined_[m];
  on_deliver(host, block, now);  // the miner has its own block instantly
  const double next = now + rng_.exponential(params_.block_interval);
  if (next <= params_.duration)
    queue_.push(next, Ev{kMineEvent, 0});
}

void ScaleSim::on_deliver(std::uint32_t dst, std::uint32_t block,
                          double now) {
  std::uint64_t& word =
      seen_[static_cast<std::size_t>(block) * words_per_block_ + dst / 64];
  const std::uint64_t bit = 1ull << (dst % 64);
  if (word & bit) {
    ++dup_suppressed_;
    return;
  }
  word |= bit;
  ++deliveries_;
  const BlockRec& rec = blocks_[block];
  if (params_.record_arrivals)
    arrival_deltas_.push_back(now - rec.mined_at);

  // fork choice: height first, then the globally deterministic
  // arena-index tie-break (earlier-mined wins), so a drained connected
  // network always agrees on one head
  if (rec.height > head_height_[dst] ||
      (rec.height == head_height_[dst] && block < head_block_[dst])) {
    head_block_[dst] = block;
    head_height_[dst] = rec.height;
  }

  // flood-forward on first sight: every neighbor, suppressed at receivers
  for (const std::uint32_t nb : topo_.neighbors_of(dst)) {
    if (cut_severs(dst, nb, now)) {
      ++cut_dropped_;
      continue;
    }
    queue_.push(now + link_delay(dst, nb), Ev{nb, block});
  }
}

ScaleReport ScaleSim::run() {
  if (ran_)
    throw std::logic_error("ScaleSim::run() is one-shot; construct anew");
  ran_ = true;
  queue_.push(rng_.exponential(params_.block_interval), Ev{kMineEvent, 0});
  while (!queue_.empty()) {
    const auto ev = queue_.pop();
    ++events_;
    if (ev.payload.dst == kMineEvent)
      on_mine(ev.at);
    else
      on_deliver(ev.payload.dst, ev.payload.block, ev.at);
  }
  return finalize();
}

ScaleReport ScaleSim::finalize() {
  ScaleReport out;
  out.blocks_mined = blocks_.size();
  out.deliveries = deliveries_;
  out.dup_suppressed = dup_suppressed_;
  out.cut_dropped = cut_dropped_;
  out.events = events_;
  out.scheduler = queue_.profile();
  out.topology_digest = topo_.digest();

  // convergence: distinct final heads across the node table
  std::vector<std::uint32_t> heads = head_block_;
  std::sort(heads.begin(), heads.end());
  out.distinct_heads = static_cast<std::size_t>(
      std::unique(heads.begin(), heads.end()) - heads.begin());
  out.converged = out.distinct_heads == 1 && !blocks_.empty();

  // canonical chain: the globally best head (max height, min index),
  // walked back through the arena
  std::uint32_t best = kGenesis;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b)
    if (best == kGenesis || blocks_[b].height > blocks_[best].height) best = b;
  std::vector<std::uint8_t> canonical(blocks_.size(), 0);
  std::uint64_t canonical_len = 0;
  for (std::uint32_t b = best; b != kGenesis; b = blocks_[b].parent) {
    canonical[b] = 1;
    ++canonical_len;
  }
  out.canonical_height = best == kGenesis ? 0 : blocks_[best].height;
  out.stale_blocks = blocks_.size() - canonical_len;
  out.stale_rate = blocks_.empty()
                       ? 0.0
                       : static_cast<double>(out.stale_blocks) /
                             static_cast<double>(blocks_.size());

  // per-miner canonical wins -> fairness
  std::vector<std::uint32_t> node_to_miner(params_.nodes, kGenesis);
  for (std::size_t m = 0; m < miner_nodes_.size(); ++m)
    node_to_miner[miner_nodes_[m]] = static_cast<std::uint32_t>(m);
  for (std::uint32_t b = 0; b < blocks_.size(); ++b)
    if (canonical[b]) ++miner_wins_[node_to_miner[blocks_[b].miner]];
  if (canonical_len > 0) {
    const double expected = 1.0 / static_cast<double>(miner_nodes_.size());
    std::vector<double> wins;
    wins.reserve(miner_wins_.size());
    double max_dev = 0.0;
    for (const std::uint64_t w : miner_wins_) {
      const double share =
          static_cast<double>(w) / static_cast<double>(canonical_len);
      max_dev = std::max(max_dev, std::abs(share - expected) / expected);
      wins.push_back(static_cast<double>(w));
    }
    out.fairness_max_dev = max_dev;
    out.fairness_gini = gini(std::move(wins));
  }

  // per-region slice
  const std::size_t regions = geo_ ? geo_->region_count() : 1;
  out.regions.resize(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    out.regions[r].name = geo_ ? geo_->params().regions[r].name : "all";
    out.regions[r].population = geo_ ? geo_->population(
                                           static_cast<std::uint32_t>(r))
                                     : params_.nodes;
  }
  const auto region_of = [&](std::uint32_t node) -> std::size_t {
    return geo_ ? geo_->region_of(node) : 0;
  };
  for (std::size_t m = 0; m < miner_nodes_.size(); ++m) {
    RegionStats& rs = out.regions[region_of(miner_nodes_[m])];
    ++rs.miners;
    rs.blocks_mined += miner_mined_[m];
    rs.blocks_canonical += miner_wins_[m];
  }
  for (RegionStats& rs : out.regions) {
    if (rs.blocks_mined > 0)
      rs.stale_rate = static_cast<double>(rs.blocks_mined -
                                          rs.blocks_canonical) /
                      static_cast<double>(rs.blocks_mined);
    const double hash_share = static_cast<double>(rs.miners) /
                              static_cast<double>(miner_nodes_.size());
    if (canonical_len > 0 && hash_share > 0.0)
      rs.fairness = (static_cast<double>(rs.blocks_canonical) /
                     static_cast<double>(canonical_len)) /
                    hash_share;
  }

  // propagation percentiles over accepted deliveries
  if (!arrival_deltas_.empty()) {
    out.prop_mean = mean(arrival_deltas_);
    out.prop_p50 = percentile(arrival_deltas_, 50.0);
    out.prop_p90 = percentile(arrival_deltas_, 90.0);
    out.prop_p99 = percentile(arrival_deltas_, 99.0);
  }

  // fingerprint: every node's final head + the run counters
  Keccak256 h;
  h.update(std::string_view("forksim/scalesim"));
  const auto fold64 = [&h](std::uint64_t v) {
    const auto be = be_fixed64(v);
    h.update(BytesView(be.data(), be.size()));
  };
  fold64(params_.seed);
  fold64(params_.nodes);
  h.update(out.topology_digest.view());
  fold64(out.blocks_mined);
  fold64(out.canonical_height);
  fold64(out.stale_blocks);
  fold64(deliveries_);
  fold64(dup_suppressed_);
  fold64(cut_dropped_);
  for (std::size_t i = 0; i < params_.nodes; ++i) {
    fold64(head_block_[i]);
    fold64(head_height_[i]);
  }
  out.fingerprint = h.digest();
  return out;
}

}  // namespace forksim::sim
