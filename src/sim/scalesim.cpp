#include "sim/scalesim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

#include "crypto/keccak.hpp"
#include "obs/metrics.hpp"
#include "support/stats.hpp"

namespace forksim::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void require_non_negative(double v, const char* field) {
  if (v < 0.0)
    throw std::invalid_argument("ScaleParams: " + std::string(field) +
                                " is negative (" + std::to_string(v) + ")");
}

void require_prob(double v, const char* field) {
  if (v < 0.0 || v > 1.0)
    throw std::invalid_argument("ScaleParams: " + std::string(field) + " (" +
                                std::to_string(v) + ") outside [0, 1]");
}

/// Independent per-node stream seed: two splitmix64 finalization rounds
/// over (run seed, lane). The node streams must be decorrelated from the
/// run stream AND from each other so attributing jitter to the forwarding
/// node never aliases the mining race.
std::uint64_t lane_seed(std::uint64_t seed, std::uint64_t lane) noexcept {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (lane + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void ScaleParams::validate() const {
  if (nodes < 2)
    throw std::invalid_argument("ScaleParams: nodes must be >= 2, got " +
                                std::to_string(nodes));
  topology.validate(nodes);
  if (geo.enabled) geo.validate();
  require_non_negative(uniform_base, "uniform_base");
  require_non_negative(jitter_scale, "jitter_scale");
  require_non_negative(jitter_sigma, "jitter_sigma");
  require_non_negative(relay_delay, "relay_delay");
  if (miners == 0 || miners > nodes)
    throw std::invalid_argument(
        "ScaleParams: miners (" + std::to_string(miners) +
        ") must be in [1, nodes=" + std::to_string(nodes) + "]");
  if (!(block_interval > 0.0))
    throw std::invalid_argument("ScaleParams: block_interval must be > 0, "
                                "got " + std::to_string(block_interval));
  require_non_negative(duration, "duration");
  // negative cut_start is the documented "no cut" flag
  require_non_negative(cut_duration, "cut_duration");
  require_prob(cut_fraction, "cut_fraction");
  if (num_shards == 0 || num_shards > nodes)
    throw std::invalid_argument(
        "ScaleParams: num_shards (" + std::to_string(num_shards) +
        ") must be in [1, nodes=" + std::to_string(nodes) + "]");
}

ScaleSim::ScaleSim(ScaleParams params)
    : params_(std::move(params)), rng_(params_.seed) {
  params_.validate();
  const std::size_t n = params_.nodes;
  topo_ = p2p::generate_topology(params_.topology, n);
  if (params_.geo.enabled) geo_.emplace(params_.geo, n);

  head_block_.assign(n, kGenesis);
  head_height_.assign(n, 0);

  // miners: evenly spread node indices (deterministic; with geo enabled
  // the seeded placement makes their regions proportional to population)
  miner_nodes_.reserve(params_.miners);
  for (std::size_t m = 0; m < params_.miners; ++m)
    miner_nodes_.push_back(static_cast<std::uint32_t>(m * n / params_.miners));
  miner_mined_.assign(params_.miners, 0);
  miner_wins_.assign(params_.miners, 0);

  // partition membership: a seeded shuffle's prefix, drawn only when the
  // cut is enabled so cut-free runs consume identical rng streams
  cut_side_.assign(n, 0);
  if (params_.cut_start >= 0.0 && params_.cut_duration > 0.0 &&
      params_.cut_fraction > 0.0) {
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = rng_.uniform(i);
      std::swap(order[i - 1], order[j]);
    }
    cut_size_ = static_cast<std::size_t>(
        static_cast<double>(n) * params_.cut_fraction + 0.5);
    cut_size_ = std::min(cut_size_, n);
    for (std::size_t i = 0; i < cut_size_; ++i) cut_side_[order[i]] = 1;
  }

  // the mining race, pre-drawn: the winner and inter-block gap draws
  // depend only on the seed (never on network state), so the whole race
  // can be fixed before any worker starts — slot i IS arena index i. The
  // first block is unconditional (mirroring the historical engine);
  // follow-ups stop once the race passes `duration`.
  double t = rng_.exponential(params_.block_interval);
  for (;;) {
    const auto winner =
        static_cast<std::uint32_t>(rng_.uniform(miner_nodes_.size()));
    schedule_.push_back(MineSlot{t, winner});
    ++miner_mined_[winner];
    t += rng_.exponential(params_.block_interval);
    if (t > params_.duration) break;
  }
  blocks_.assign(schedule_.size(), BlockRec{kGenesis, 0, 0, 0.0});
  words_per_node_ = (schedule_.size() + 63) / 64;
  seen_.assign(n * words_per_node_, 0);

  // per-node jitter streams (stream i touched only by node i's shard)
  node_rng_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    node_rng_.emplace_back(lane_seed(params_.seed, i));

  // contiguous shard partition + the conservative epoch bound
  const std::size_t k = params_.num_shards;
  shard_of_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    shard_of_[i] = p2p::ShardPlan::shard_for(i, n, k);
  lookahead_ = k > 1 ? compute_lookahead() : 0.0;
  if (k > 1 && !(lookahead_ > 0.0))
    throw std::invalid_argument(
        "ScaleParams: num_shards > 1 requires a positive cross-shard "
        "latency floor (uniform_base/geo RTT + relay_delay), got " +
        std::to_string(lookahead_));
  shards_ = std::vector<Shard>(k);
  for (Shard& shard : shards_) shard.outbox.resize(k);
}

double ScaleSim::compute_lookahead() const {
  // the minimum latency ANY cross-shard message can experience: base
  // (geo pair RTT/2 or the uniform base) + relay, with jitter >= 0. A
  // message sent at time t over a cross-shard edge therefore arrives no
  // earlier than t + lookahead — the classic conservative PDES bound.
  double floor = kInf;
  for (std::uint32_t a = 0; a < params_.nodes; ++a) {
    for (const std::uint32_t b : topo_.neighbors_of(a)) {
      if (shard_of_[a] == shard_of_[b]) continue;
      const double base = geo_ ? geo_->base_delay(a, b) : params_.uniform_base;
      floor = std::min(floor, base + params_.relay_delay);
    }
  }
  return floor;  // +inf when no edge crosses a shard boundary
}

double ScaleSim::link_delay(std::uint32_t src, std::uint32_t dst) {
  double base;
  double scale;
  double sigma;
  if (geo_) {
    base = geo_->base_delay(src, dst);
    scale = geo_->params().jitter_scale;
    sigma = geo_->params().jitter_sigma;
  } else {
    base = params_.uniform_base;
    scale = params_.jitter_scale;
    sigma = params_.jitter_sigma;
  }
  // jitter comes from the FORWARDING node's private stream: consumed in
  // that node's (deterministic) event order, so the draw is identical no
  // matter which shard count — or thread — executes the forward
  const double jitter =
      scale > 0 ? node_rng_[src].lognormal(0.0, sigma) * scale : 0.0;
  return base + jitter + params_.relay_delay;
}

bool ScaleSim::cut_severs(std::uint32_t a, std::uint32_t b,
                          double now) const {
  if (cut_size_ == 0) return false;
  if (now < params_.cut_start ||
      now >= params_.cut_start + params_.cut_duration)
    return false;
  return cut_side_[a] != cut_side_[b];
}

void ScaleSim::exec_mine(Shard& shard, std::uint32_t slot, double now) {
  const std::uint32_t host = miner_nodes_[schedule_[slot].winner];
  const std::uint32_t parent = head_block_[host];
  const std::uint32_t height = head_height_[host] + 1;
  blocks_[slot] = BlockRec{parent, height, host, now};
  exec_deliver(shard, host, slot, now);  // the miner has its block instantly
}

void ScaleSim::exec_deliver(Shard& shard, std::uint32_t dst,
                            std::uint32_t block, double now) {
  std::uint64_t& word =
      seen_[static_cast<std::size_t>(dst) * words_per_node_ + block / 64];
  const std::uint64_t bit = 1ull << (block % 64);
  if (word & bit) {
    ++shard.dup_suppressed;
    return;
  }
  word |= bit;
  ++shard.deliveries;
  const BlockRec& rec = blocks_[block];
  if (params_.record_arrivals)
    shard.arrivals.push_back(now - rec.mined_at);

  // fork choice: height first, then the globally deterministic
  // arena-index tie-break (earlier-mined wins), so a drained connected
  // network always agrees on one head
  if (rec.height > head_height_[dst] ||
      (rec.height == head_height_[dst] && block < head_block_[dst])) {
    head_block_[dst] = block;
    head_height_[dst] = rec.height;
  }

  // flood-forward on first sight: every neighbor, suppressed at receivers;
  // off-shard destinations are buffered for the epoch barrier
  const std::uint32_t my_shard = shard_of_[dst];
  for (const std::uint32_t nb : topo_.neighbors_of(dst)) {
    if (cut_severs(dst, nb, now)) {
      ++shard.cut_dropped;
      continue;
    }
    const double at = now + link_delay(dst, nb);
    const std::uint64_t key = delivery_key(block, nb);
    const std::uint32_t dest_shard = shard_of_[nb];
    if (dest_shard == my_shard) {
      shard.queue.push(at, key, Ev{nb, block});
    } else {
      shard.outbox[dest_shard].push_back(Mail{at, key, Ev{nb, block}});
      ++shard.mail_out;
    }
  }
}

void ScaleSim::process_until(Shard& shard, double horizon) {
  while (!shard.queue.empty() && shard.queue.top().at < horizon) {
    const auto ev = shard.queue.pop();
    ++shard.events;
    if (ev.payload.dst == kMineEvent)
      exec_mine(shard, ev.payload.block, ev.at);
    else
      exec_deliver(shard, ev.payload.dst, ev.payload.block, ev.at);
  }
}

void ScaleSim::merge_inbox(std::size_t s) {
  // drain every source shard's bucket for us, in ascending source order.
  // Push order cannot influence pop order (KeyedTimedQueue is keyed), but
  // a fixed order keeps the heap-shape profile reproducible run to run.
  for (Shard& src : shards_) {
    std::vector<Mail>& bucket = src.outbox[s];
    for (const Mail& mail : bucket)
      shards_[s].queue.push(mail.at, mail.key, mail.ev);
    bucket.clear();
  }
}

void ScaleSim::worker(std::size_t s, p2p::PhaseBarrier& barrier,
                      EpochControl& ctl) {
  Shard& shard = shards_[s];
  for (;;) {
    // (1) previous epoch's merges are done everywhere; shard 0 computes
    // the next horizon from every queue's minimum
    barrier.arrive_and_wait();
    if (s == 0) {
      double t_min = kInf;
      for (const Shard& sh : shards_)
        if (!sh.queue.empty()) t_min = std::min(t_min, sh.queue.top().at);
      ctl.done = t_min == kInf;
      if (!ctl.done) {
        ctl.horizon = t_min + lookahead_;
        ++ctl.epochs;
      }
    }
    // (2) horizon published
    barrier.arrive_and_wait();
    if (ctl.done) break;
    const double horizon = ctl.horizon;
    process_until(shard, horizon);
    if (params_.audit_epochs) {
      // conservative invariant: nothing we mailed this epoch may land
      // before the horizon — otherwise a peer shard could already have
      // drained past the arrival time
      for (const std::vector<Mail>& bucket : shard.outbox)
        for (const Mail& mail : bucket) {
          ++shard.audit_checked;
          if (mail.at < horizon) ++shard.audit_violations;
        }
    }
    // (3) all outboxes final; everyone collects their inbound mail
    barrier.arrive_and_wait();
    merge_inbox(s);
  }
}

ScaleReport ScaleSim::run() {
  if (ran_)
    throw std::logic_error("ScaleSim::run() is one-shot; construct anew");
  ran_ = true;

  // seed every shard's queue with its own miners' pre-drawn race slots
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(schedule_.size()); ++slot) {
    const std::uint32_t host = miner_nodes_[schedule_[slot].winner];
    shards_[shard_of_[host]].queue.push(schedule_[slot].at, slot,
                                        Ev{kMineEvent, slot});
  }

  if (shards_.size() == 1) {
    process_until(shards_[0], kInf);
    epochs_ = shards_[0].events > 0 ? 1 : 0;
  } else {
    p2p::PhaseBarrier barrier(shards_.size());
    EpochControl ctl;
    std::vector<std::thread> threads;
    threads.reserve(shards_.size() - 1);
    for (std::size_t s = 1; s < shards_.size(); ++s)
      threads.emplace_back([this, s, &barrier, &ctl] {
        worker(s, barrier, ctl);
      });
    worker(0, barrier, ctl);
    for (std::thread& th : threads) th.join();
    epochs_ = ctl.epochs;
  }
  return finalize();
}

ScaleReport ScaleSim::finalize() {
  // fold the per-shard tallies in ascending shard order (integer sums are
  // order-free; the arrivals get a canonical sort below, so every shard
  // count reports bit-identical statistics)
  for (const Shard& shard : shards_) {
    deliveries_ += shard.deliveries;
    dup_suppressed_ += shard.dup_suppressed;
    cut_dropped_ += shard.cut_dropped;
    events_ += shard.events;
    cross_shard_messages_ += shard.mail_out;
    audit_checked_ += shard.audit_checked;
    audit_violations_ += shard.audit_violations;
    arrival_deltas_.insert(arrival_deltas_.end(), shard.arrivals.begin(),
                           shard.arrivals.end());
    const p2p::TimedQueueProfile& p = shard.queue.profile();
    profile_.pushes += p.pushes;
    profile_.pops += p.pops;
    profile_.cancels += p.cancels;
    profile_.sift_steps += p.sift_steps;
    profile_.max_size = std::max(profile_.max_size, p.max_size);
  }
  std::sort(arrival_deltas_.begin(), arrival_deltas_.end());

  ScaleReport out;
  out.blocks_mined = blocks_.size();
  out.deliveries = deliveries_;
  out.dup_suppressed = dup_suppressed_;
  out.cut_dropped = cut_dropped_;
  out.events = events_;
  out.scheduler = profile_;
  out.topology_digest = topo_.digest();
  out.shards = shards_.size();
  out.epochs = epochs_;
  out.cross_shard_messages = cross_shard_messages_;
  out.lookahead = lookahead_;
  out.audit_mail_checked = audit_checked_;
  out.audit_violations = audit_violations_;

  // convergence: distinct final heads across the node table
  std::vector<std::uint32_t> heads = head_block_;
  std::sort(heads.begin(), heads.end());
  out.distinct_heads = static_cast<std::size_t>(
      std::unique(heads.begin(), heads.end()) - heads.begin());
  out.converged = out.distinct_heads == 1 && !blocks_.empty();

  // canonical chain: the globally best head (max height, min index),
  // walked back through the arena
  std::uint32_t best = kGenesis;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b)
    if (best == kGenesis || blocks_[b].height > blocks_[best].height) best = b;
  std::vector<std::uint8_t> canonical(blocks_.size(), 0);
  std::uint64_t canonical_len = 0;
  for (std::uint32_t b = best; b != kGenesis; b = blocks_[b].parent) {
    canonical[b] = 1;
    ++canonical_len;
  }
  out.canonical_height = best == kGenesis ? 0 : blocks_[best].height;
  out.stale_blocks = blocks_.size() - canonical_len;
  out.stale_rate = blocks_.empty()
                       ? 0.0
                       : static_cast<double>(out.stale_blocks) /
                             static_cast<double>(blocks_.size());

  // per-miner canonical wins -> fairness
  std::vector<std::uint32_t> node_to_miner(params_.nodes, kGenesis);
  for (std::size_t m = 0; m < miner_nodes_.size(); ++m)
    node_to_miner[miner_nodes_[m]] = static_cast<std::uint32_t>(m);
  for (std::uint32_t b = 0; b < blocks_.size(); ++b)
    if (canonical[b]) ++miner_wins_[node_to_miner[blocks_[b].miner]];
  if (canonical_len > 0) {
    const double expected = 1.0 / static_cast<double>(miner_nodes_.size());
    std::vector<double> wins;
    wins.reserve(miner_wins_.size());
    double max_dev = 0.0;
    for (const std::uint64_t w : miner_wins_) {
      const double share =
          static_cast<double>(w) / static_cast<double>(canonical_len);
      max_dev = std::max(max_dev, std::abs(share - expected) / expected);
      wins.push_back(static_cast<double>(w));
    }
    out.fairness_max_dev = max_dev;
    out.fairness_gini = gini(std::move(wins));
  }

  // per-region slice
  const std::size_t regions = geo_ ? geo_->region_count() : 1;
  out.regions.resize(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    out.regions[r].name = geo_ ? geo_->params().regions[r].name : "all";
    out.regions[r].population = geo_ ? geo_->population(
                                           static_cast<std::uint32_t>(r))
                                     : params_.nodes;
  }
  const auto region_of = [&](std::uint32_t node) -> std::size_t {
    return geo_ ? geo_->region_of(node) : 0;
  };
  for (std::size_t m = 0; m < miner_nodes_.size(); ++m) {
    RegionStats& rs = out.regions[region_of(miner_nodes_[m])];
    ++rs.miners;
    rs.blocks_mined += miner_mined_[m];
    rs.blocks_canonical += miner_wins_[m];
  }
  for (RegionStats& rs : out.regions) {
    if (rs.blocks_mined > 0)
      rs.stale_rate = static_cast<double>(rs.blocks_mined -
                                          rs.blocks_canonical) /
                      static_cast<double>(rs.blocks_mined);
    const double hash_share = static_cast<double>(rs.miners) /
                              static_cast<double>(miner_nodes_.size());
    if (canonical_len > 0 && hash_share > 0.0)
      rs.fairness = (static_cast<double>(rs.blocks_canonical) /
                     static_cast<double>(canonical_len)) /
                    hash_share;
  }

  // propagation percentiles over accepted deliveries (sorted above, so
  // the mean's summation order is canonical too)
  if (!arrival_deltas_.empty()) {
    out.prop_mean = mean(arrival_deltas_);
    out.prop_p50 = percentile(arrival_deltas_, 50.0);
    out.prop_p90 = percentile(arrival_deltas_, 90.0);
    out.prop_p99 = percentile(arrival_deltas_, 99.0);
  }

  // fingerprint: every node's final head + the run counters. Execution
  // shape (shards, epochs, mail, profile) is deliberately excluded — the
  // outcome it hashes is the thing that must not move with num_shards.
  Keccak256 h;
  h.update(std::string_view("forksim/scalesim"));
  const auto fold64 = [&h](std::uint64_t v) {
    const auto be = be_fixed64(v);
    h.update(BytesView(be.data(), be.size()));
  };
  fold64(params_.seed);
  fold64(params_.nodes);
  h.update(out.topology_digest.view());
  fold64(out.blocks_mined);
  fold64(out.canonical_height);
  fold64(out.stale_blocks);
  fold64(deliveries_);
  fold64(dup_suppressed_);
  fold64(cut_dropped_);
  for (std::size_t i = 0; i < params_.nodes; ++i) {
    fold64(head_block_[i]);
    fold64(head_height_[i]);
  }
  out.fingerprint = h.digest();
  return out;
}

void ScaleSim::export_telemetry(obs::Registry& reg) const {
  if (!ran_) return;
  // one Snapshot per shard, merged in ascending shard order through the
  // obs merge path — the same fold every shard count produces, so merged
  // telemetry fingerprints are shard-count-invariant (asserted by
  // tests/parallel_sim_test.cpp)
  for (const Shard& shard : shards_) {
    obs::Registry local;
    local.counter("scalesim.deliveries").inc(shard.deliveries);
    local.counter("scalesim.dup_suppressed").inc(shard.dup_suppressed);
    local.counter("scalesim.cut_dropped").inc(shard.cut_dropped);
    local.counter("scalesim.events").inc(shard.events);
    reg.merge(local.snapshot());
  }
  reg.counter("scalesim.blocks_mined").inc(blocks_.size());
}

}  // namespace forksim::sim
