#include "sim/adversary.hpp"

#include "core/difficulty.hpp"
#include "crypto/keccak.hpp"

namespace forksim::sim {

using namespace p2p;

std::string_view to_string(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kInvalidForger: return "invalid-forger";
    case AdversaryKind::kWithholder: return "withholder";
    case AdversaryKind::kTxSpammer: return "tx-spammer";
    case AdversaryKind::kEquivocator: return "equivocator";
  }
  return "unknown";
}

Adversary::Adversary(FullNode& host, AdversaryOptions options, Rng rng)
    : host_(host), options_(options), rng_(rng) {
  spam_keys_.reserve(options_.spam_accounts);
  for (std::size_t i = 0; i < options_.spam_accounts; ++i)
    spam_keys_.push_back(PrivateKey::from_seed(rng_.next()));
  spam_nonces_.assign(spam_keys_.size(), 0);
}

void Adversary::attach_telemetry(obs::Registry& reg) {
  tm_rounds_ = &reg.counter("adversary.rounds");
  tm_forged_ = &reg.counter("adversary.blocks_forged");
  tm_phantoms_ = &reg.counter("adversary.phantom_announcements");
  tm_spam_ = &reg.counter("adversary.txs_spammed");
  tm_equivocations_ = &reg.counter("adversary.equivocations");
  tm_rounds_->inc(counters_.rounds);
  tm_forged_->inc(counters_.blocks_forged);
  tm_phantoms_->inc(counters_.phantom_announcements);
  tm_spam_->inc(counters_.txs_spammed);
  tm_equivocations_->inc(counters_.equivocations);
}

void Adversary::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void Adversary::stop() {
  running_ = false;
  ++generation_;
}

void Adversary::schedule_next() {
  const std::uint64_t gen = generation_;
  host_.network().loop().schedule(options_.interval, [this, gen] {
    if (gen != generation_ || !running_) return;
    tick();
  });
}

void Adversary::tick() {
  if (host_.running()) {
    ++counters_.rounds;
    obs::inc(tm_rounds_);
    switch (options_.kind) {
      case AdversaryKind::kInvalidForger: run_forger(); break;
      case AdversaryKind::kWithholder: run_withholder(); break;
      case AdversaryKind::kTxSpammer: run_spammer(); break;
      case AdversaryKind::kEquivocator: run_equivocator(); break;
    }
  }
  schedule_next();
}

std::vector<NodeId> Adversary::targets() const {
  return host_.peers().active_peers();
}

void Adversary::send_raw(const NodeId& to, const Message& msg) {
  // straight onto the wire, bypassing the host's honest send paths and
  // inventory bookkeeping — exactly what a modified client would do
  host_.network().send(host_.id(), to, encode_message(msg));
}

core::Block Adversary::forge_block() {
  const auto& chain = host_.chain();
  const core::BlockNumber head_height = chain.height();
  const core::BlockNumber parent_height =
      head_height > options_.forge_depth ? head_height - options_.forge_depth
                                         : 0;
  const core::Block* parent = chain.block_by_number(parent_height);
  const auto& config = chain.config();
  ++forge_seq_;

  core::Block block;
  core::BlockHeader& h = block.header;
  h.parent_hash = parent->hash();
  h.number = parent->header.number + 1;
  // unique timestamp per forgery so every round yields a fresh hash
  h.timestamp = parent->header.timestamp + 13 + forge_seq_;
  h.gas_limit = parent->header.gas_limit;
  h.gas_used = 0;
  h.difficulty =
      core::next_difficulty(config, h.number, h.timestamp,
                            parent->header.difficulty,
                            parent->header.timestamp);
  if (config.dao_fork_block && h.number == *config.dao_fork_block &&
      config.dao_fork_support)
    h.extra_data = core::dao_fork_extra_data();
  // Garbage state/receipts commitments: producing the real ones would mean
  // doing the execution work the forger is trying to push onto victims.
  Keccak256 sr;
  sr.update(std::string_view("forksim/forged-state"));
  const auto be = be_fixed64(forge_seq_);
  sr.update(BytesView(be.data(), be.size()));
  h.state_root = sr.digest();
  h.receipts_root = h.state_root;
  // correct body commitments (empty body), so nothing cheaper than
  // execution can expose the kBadStateRoot defect
  h.transactions_root = block.compute_transactions_root();
  h.ommers_hash = block.compute_ommers_hash();

  switch (options_.defect) {
    case ForgeDefect::kBadStateRoot:
      break;  // the garbage state root above is the defect
    case ForgeDefect::kBadDifficulty:
      h.difficulty = h.difficulty + U256(1'000'003);
      break;
    case ForgeDefect::kBadStructure:
      h.extra_data.assign(64, 0xad);
      break;
  }
  return block;
}

void Adversary::run_forger() {
  const std::vector<NodeId> t = targets();
  if (t.empty()) return;
  const core::Block block = forge_block();
  ++counters_.blocks_forged;
  obs::inc(tm_forged_);
  const U256 td =
      host_.chain().total_difficulty_of(block.header.parent_hash) +
      block.header.difficulty;
  for (const NodeId& peer : t)
    send_raw(peer, Message{NewBlock{block, td}});
  forged_.push_back(block);
  if (forged_.size() > 8) forged_.erase(forged_.begin());
  // re-push earlier forgeries: a hardened victim absorbs them from its
  // known-invalid cache; an un-hardened one re-validates every time
  for (std::size_t i = 0; i < options_.forge_repush; ++i) {
    const core::Block& old = forged_[repush_cursor_++ % forged_.size()];
    const U256 old_td =
        host_.chain().total_difficulty_of(old.header.parent_hash) +
        old.header.difficulty;
    for (const NodeId& peer : t)
      send_raw(peer, Message{NewBlock{old, old_td}});
  }
}

void Adversary::run_withholder() {
  const std::vector<NodeId> t = targets();
  if (t.empty()) return;
  NewBlockHashes ann;
  for (std::size_t i = 0; i < options_.withhold_batch; ++i) {
    Keccak256 k;
    k.update(std::string_view("forksim/phantom"));
    k.update(host_.id().view());
    const auto be = be_fixed64(++phantom_seq_);
    k.update(BytesView(be.data(), be.size()));
    ann.hashes.push_back(k.digest());
  }
  counters_.phantom_announcements += ann.hashes.size();
  obs::inc(tm_phantoms_, ann.hashes.size());
  for (const NodeId& peer : t) send_raw(peer, Message{ann});
}

void Adversary::run_spammer() {
  const std::vector<NodeId> t = targets();
  if (t.empty()) return;
  const Address sink = derive_address(spam_keys_[0]);
  const std::size_t third = options_.spam_batch / 3;
  Transactions batch;
  // (a) admitted-but-worthless: floor-priced, from unfunded junk accounts —
  // these occupy pool slots until honest traffic evicts them
  std::vector<core::Transaction> fillers;
  for (std::size_t i = 0; i < third; ++i) {
    const std::size_t k = spam_seq_++ % spam_keys_.size();
    fillers.push_back(core::make_transaction(
        spam_keys_[k], spam_nonces_[k]++, sink, core::Wei(1),
        /*chain_id=*/std::nullopt, /*gas_price=*/core::Wei(1)));
  }
  for (const auto& tx : fillers) batch.transactions.push_back(tx);
  // (b) duplicates: last round's fillers verbatim (kAlreadyKnown churn)
  for (const auto& tx : last_fillers_) batch.transactions.push_back(tx);
  // (c) underpriced: below the pool floor, hard-rejected on sight — this is
  // what trips the victim's junk-batch detector
  for (std::size_t i = 0; i < third; ++i) {
    const std::size_t k = spam_seq_++ % spam_keys_.size();
    batch.transactions.push_back(core::make_transaction(
        spam_keys_[k], 0, sink, core::Wei(1),
        /*chain_id=*/std::nullopt, /*gas_price=*/core::Wei(0)));
  }
  last_fillers_ = std::move(fillers);
  counters_.txs_spammed += batch.transactions.size();
  obs::inc(tm_spam_, batch.transactions.size());
  for (const NodeId& peer : t) send_raw(peer, Message{batch});
}

void Adversary::run_equivocator() {
  auto& chain = host_.chain();
  if (chain.height() == 0) return;  // genesis has no siblings
  const std::vector<NodeId> t = targets();
  if (t.empty()) return;
  const core::Block& head = chain.head();
  // Siblings of the current head: same parent, same difficulty, different
  // pow nonce. Each is fully valid (the nonce is outside the state
  // transition), so victims pay a complete execution per clone, but a total-
  // difficulty tie never takes over a head — equivocation splits views
  // without requiring any real hashpower.
  const U256 td = chain.total_difficulty_of(head.hash());
  for (std::size_t k = 0; k < options_.equivocation_fanout; ++k) {
    core::Block clone = head;
    clone.header.nonce = rng_.next();
    ++counters_.equivocations;
    obs::inc(tm_equivocations_);
    // disjoint halves of the peer set get alternating clones
    for (std::size_t i = 0; i < t.size(); ++i)
      if (i % 2 == k % 2) send_raw(t[i], Message{NewBlock{clone, td}});
  }
}

}  // namespace forksim::sim
