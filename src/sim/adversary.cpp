#include "sim/adversary.hpp"

#include <algorithm>

#include "core/difficulty.hpp"
#include "crypto/keccak.hpp"

namespace forksim::sim {

using namespace p2p;

std::string_view to_string(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kInvalidForger: return "invalid-forger";
    case AdversaryKind::kWithholder: return "withholder";
    case AdversaryKind::kTxSpammer: return "tx-spammer";
    case AdversaryKind::kEquivocator: return "equivocator";
  }
  return "unknown";
}

Adversary::Adversary(FullNode& host, AdversaryOptions options, Rng rng)
    : host_(host), options_(options), rng_(rng) {
  spam_keys_.reserve(options_.spam_accounts);
  for (std::size_t i = 0; i < options_.spam_accounts; ++i)
    spam_keys_.push_back(PrivateKey::from_seed(rng_.next()));
  spam_nonces_.assign(spam_keys_.size(), 0);
}

void Adversary::attach_telemetry(obs::Registry& reg) {
  tm_rounds_ = &reg.counter("adversary.rounds");
  tm_forged_ = &reg.counter("adversary.blocks_forged");
  tm_phantoms_ = &reg.counter("adversary.phantom_announcements");
  tm_spam_ = &reg.counter("adversary.txs_spammed");
  tm_equivocations_ = &reg.counter("adversary.equivocations");
  tm_rounds_->inc(counters_.rounds);
  tm_forged_->inc(counters_.blocks_forged);
  tm_phantoms_->inc(counters_.phantom_announcements);
  tm_spam_->inc(counters_.txs_spammed);
  tm_equivocations_->inc(counters_.equivocations);
}

void Adversary::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void Adversary::stop() {
  running_ = false;
  ++generation_;
}

void Adversary::schedule_next() {
  const std::uint64_t gen = generation_;
  host_.network().loop().schedule(options_.interval, [this, gen] {
    if (gen != generation_ || !running_) return;
    tick();
  });
}

void Adversary::tick() {
  if (host_.running()) {
    ++counters_.rounds;
    obs::inc(tm_rounds_);
    switch (options_.kind) {
      case AdversaryKind::kInvalidForger: run_forger(); break;
      case AdversaryKind::kWithholder: run_withholder(); break;
      case AdversaryKind::kTxSpammer: run_spammer(); break;
      case AdversaryKind::kEquivocator: run_equivocator(); break;
    }
  }
  schedule_next();
}

std::vector<NodeId> Adversary::targets() const {
  return host_.peers().active_peers();
}

void Adversary::send_raw(const NodeId& to, const Message& msg) {
  // straight onto the wire, bypassing the host's honest send paths and
  // inventory bookkeeping — exactly what a modified client would do
  host_.network().send(host_.id(), to, encode_message(msg));
}

core::Block Adversary::forge_block() {
  const auto& chain = host_.chain();
  const core::BlockNumber head_height = chain.height();
  const core::BlockNumber parent_height =
      head_height > options_.forge_depth ? head_height - options_.forge_depth
                                         : 0;
  const core::Block* parent = chain.block_by_number(parent_height);
  const auto& config = chain.config();
  ++forge_seq_;

  core::Block block;
  core::BlockHeader& h = block.header;
  h.parent_hash = parent->hash();
  h.number = parent->header.number + 1;
  // unique timestamp per forgery so every round yields a fresh hash
  h.timestamp = parent->header.timestamp + 13 + forge_seq_;
  h.gas_limit = parent->header.gas_limit;
  h.gas_used = 0;
  h.difficulty =
      core::next_difficulty(config, h.number, h.timestamp,
                            parent->header.difficulty,
                            parent->header.timestamp);
  if (config.dao_fork_block && h.number == *config.dao_fork_block &&
      config.dao_fork_support)
    h.extra_data = core::dao_fork_extra_data();
  // Garbage state/receipts commitments: producing the real ones would mean
  // doing the execution work the forger is trying to push onto victims.
  Keccak256 sr;
  sr.update(std::string_view("forksim/forged-state"));
  const auto be = be_fixed64(forge_seq_);
  sr.update(BytesView(be.data(), be.size()));
  h.state_root = sr.digest();
  h.receipts_root = h.state_root;
  // correct body commitments (empty body), so nothing cheaper than
  // execution can expose the kBadStateRoot defect
  h.transactions_root = block.compute_transactions_root();
  h.ommers_hash = block.compute_ommers_hash();

  switch (options_.defect) {
    case ForgeDefect::kBadStateRoot:
      break;  // the garbage state root above is the defect
    case ForgeDefect::kBadDifficulty:
      h.difficulty = h.difficulty + U256(1'000'003);
      break;
    case ForgeDefect::kBadStructure:
      h.extra_data.assign(64, 0xad);
      break;
  }
  return block;
}

void Adversary::run_forger() {
  const std::vector<NodeId> t = targets();
  if (t.empty()) return;
  const core::Block block = forge_block();
  ++counters_.blocks_forged;
  obs::inc(tm_forged_);
  const U256 td =
      host_.chain().total_difficulty_of(block.header.parent_hash) +
      block.header.difficulty;
  for (const NodeId& peer : t)
    send_raw(peer, Message{NewBlock{block, td}});
  forged_.push_back(block);
  if (forged_.size() > 8) forged_.erase(forged_.begin());
  // re-push earlier forgeries: a hardened victim absorbs them from its
  // known-invalid cache; an un-hardened one re-validates every time
  for (std::size_t i = 0; i < options_.forge_repush; ++i) {
    const core::Block& old = forged_[repush_cursor_++ % forged_.size()];
    const U256 old_td =
        host_.chain().total_difficulty_of(old.header.parent_hash) +
        old.header.difficulty;
    for (const NodeId& peer : t)
      send_raw(peer, Message{NewBlock{old, old_td}});
  }
}

void Adversary::run_withholder() {
  const std::vector<NodeId> t = targets();
  if (t.empty()) return;
  NewBlockHashes ann;
  for (std::size_t i = 0; i < options_.withhold_batch; ++i) {
    Keccak256 k;
    k.update(std::string_view("forksim/phantom"));
    k.update(host_.id().view());
    const auto be = be_fixed64(++phantom_seq_);
    k.update(BytesView(be.data(), be.size()));
    ann.hashes.push_back(k.digest());
  }
  counters_.phantom_announcements += ann.hashes.size();
  obs::inc(tm_phantoms_, ann.hashes.size());
  for (const NodeId& peer : t) send_raw(peer, Message{ann});
}

void Adversary::run_spammer() {
  const std::vector<NodeId> t = targets();
  if (t.empty()) return;
  const Address sink = derive_address(spam_keys_[0]);
  const std::size_t third = options_.spam_batch / 3;
  Transactions batch;
  // (a) admitted-but-worthless: floor-priced, from unfunded junk accounts —
  // these occupy pool slots until honest traffic evicts them
  std::vector<core::Transaction> fillers;
  for (std::size_t i = 0; i < third; ++i) {
    const std::size_t k = spam_seq_++ % spam_keys_.size();
    fillers.push_back(core::make_transaction(
        spam_keys_[k], spam_nonces_[k]++, sink, core::Wei(1),
        /*chain_id=*/std::nullopt, /*gas_price=*/core::Wei(1)));
  }
  for (const auto& tx : fillers) batch.transactions.push_back(tx);
  // (b) duplicates: last round's fillers verbatim (kAlreadyKnown churn)
  for (const auto& tx : last_fillers_) batch.transactions.push_back(tx);
  // (c) underpriced: below the pool floor, hard-rejected on sight — this is
  // what trips the victim's junk-batch detector
  for (std::size_t i = 0; i < third; ++i) {
    const std::size_t k = spam_seq_++ % spam_keys_.size();
    batch.transactions.push_back(core::make_transaction(
        spam_keys_[k], 0, sink, core::Wei(1),
        /*chain_id=*/std::nullopt, /*gas_price=*/core::Wei(0)));
  }
  last_fillers_ = std::move(fillers);
  counters_.txs_spammed += batch.transactions.size();
  obs::inc(tm_spam_, batch.transactions.size());
  for (const NodeId& peer : t) send_raw(peer, Message{batch});
}

void Adversary::run_equivocator() {
  auto& chain = host_.chain();
  if (chain.height() == 0) return;  // genesis has no siblings
  const std::vector<NodeId> t = targets();
  if (t.empty()) return;
  const core::Block& head = chain.head();
  // Siblings of the current head: same parent, same difficulty, different
  // pow nonce. Each is fully valid (the nonce is outside the state
  // transition), so victims pay a complete execution per clone, but a total-
  // difficulty tie never takes over a head — equivocation splits views
  // without requiring any real hashpower.
  const U256 td = chain.total_difficulty_of(head.hash());
  for (std::size_t k = 0; k < options_.equivocation_fanout; ++k) {
    core::Block clone = head;
    clone.header.nonce = rng_.next();
    ++counters_.equivocations;
    obs::inc(tm_equivocations_);
    // disjoint halves of the peer set get alternating clones
    for (std::size_t i = 0; i < t.size(); ++i)
      if (i % 2 == k % 2) send_raw(t[i], Message{NewBlock{clone, td}});
  }
}

// ------------------------------------------------------------------ eclipse

NodeId EclipseAdversary::mint_sybil(const NodeId& victim, std::uint64_t k) {
  const int target_bucket = 240 + static_cast<int>(k % 8);
  const auto bk = be_fixed64(k);
  for (std::uint64_t nonce = 0;; ++nonce) {
    Keccak256 h;
    h.update(std::string_view("forksim/sybil"));
    h.update(victim.view());
    h.update(BytesView(bk.data(), bk.size()));
    const auto bn = be_fixed64(nonce);
    h.update(BytesView(bn.data(), bn.size()));
    const NodeId id = h.digest();
    // Expected 2^(255-target_bucket) keccaks per sybil (2^8..2^15): cheap,
    // which is exactly the point — grinding ids into a victim's near
    // buckets costs an attacker almost nothing.
    if (distance_bucket(victim, id) == target_bucket) return id;
  }
}

EclipseAdversary::EclipseAdversary(FullNode& host, EclipseOptions options)
    : host_(host), options_(std::move(options)) {
  sybils_.reserve(options_.sybil_budget);
  for (std::uint64_t k = 0; k < options_.sybil_budget; ++k) {
    const NodeId id = mint_sybil(options_.victim, k);
    sybil_index_.emplace(id, sybils_.size());
    sybils_.push_back(id);
  }
  engaged_.resize(sybils_.size());
}

EclipseAdversary::~EclipseAdversary() { stop(); }

void EclipseAdversary::attach_telemetry(obs::Registry& reg) {
  tm_rounds_ = &reg.counter("adversary.eclipse.rounds");
  tm_table_floods_ = &reg.counter("adversary.eclipse.table_floods");
  tm_status_floods_ = &reg.counter("adversary.eclipse.status_floods");
  tm_lookups_ = &reg.counter("adversary.eclipse.lookups_answered");
  tm_withheld_ = &reg.counter("adversary.eclipse.withheld_requests");
  tm_rounds_->inc(counters_.rounds);
  tm_table_floods_->inc(counters_.table_floods);
  tm_status_floods_->inc(counters_.status_floods);
  tm_lookups_->inc(counters_.lookups_answered);
  tm_withheld_->inc(counters_.withheld_requests);
}

void EclipseAdversary::start() {
  if (running_) return;
  running_ = true;
  Network& net = host_.network();
  for (std::size_t i = 0; i < sybils_.size(); ++i) {
    const NodeId sybil = sybils_[i];
    if (net.is_attached(sybil)) continue;  // paranoia: minted collision
    net.attach(sybil, [this, i](const NodeId& from, const Bytes& wire) {
      on_sybil_message(i, from, wire);
    });
  }
  schedule_next();
}

void EclipseAdversary::stop() {
  if (!running_) return;
  running_ = false;
  ++generation_;
  Network& net = host_.network();
  for (const NodeId& sybil : sybils_) net.detach(sybil);
  for (auto& set : engaged_) set.clear();
}

void EclipseAdversary::schedule_next() {
  const std::uint64_t gen = generation_;
  host_.network().loop().schedule(options_.interval, [this, gen] {
    if (gen != generation_ || !running_) return;
    tick();
  });
}

void EclipseAdversary::send_from(const NodeId& sybil, const NodeId& to,
                                 const Message& msg) {
  host_.network().send(sybil, to, encode_message(msg));
}

Status EclipseAdversary::crafted_status() const {
  // The genesis persona: chain-id and genesis hash are real (so the
  // network check and the DAO challenge pass) but the claimed head is
  // genesis itself. A victim therefore never requests blocks from a sybil
  // — and never sees it time out or misbehave, so peer scoring has nothing
  // to penalize. The eclipse starves quietly.
  const auto& chain = host_.chain();
  const core::Block& genesis = chain.genesis();
  Status s;
  s.network_id = chain.config().chain_id;
  s.genesis_hash = genesis.hash();
  s.head_hash = genesis.hash();
  s.head_number = 0;
  s.total_difficulty = chain.total_difficulty_of(genesis.hash());
  return s;
}

std::vector<NodeId> EclipseAdversary::sybils_closest_to(
    const NodeId& target) const {
  std::vector<NodeId> out = sybils_;
  std::sort(out.begin(), out.end(), [&](const NodeId& a, const NodeId& b) {
    return closer_to(target, a, b);
  });
  if (out.size() > RoutingTable::kBucketSize)
    out.resize(RoutingTable::kBucketSize);
  return out;
}

void EclipseAdversary::on_sybil_message(std::size_t index, const NodeId& from,
                                        const Bytes& wire) {
  if (!running_) return;
  const NodeId& sybil = sybils_[index];
  const auto msg = decode_message(BytesView(wire.data(), wire.size()));
  if (!msg) return;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Ping>) {
          // answer liveness probes: sybils must look alive to survive
          // ping-before-evict challenges and feeler dials
          send_from(sybil, from, Message{Pong{}});
        } else if constexpr (std::is_same_v<T, FindNode>) {
          ++counters_.lookups_answered;
          obs::inc(tm_lookups_);
          Neighbors reply;
          reply.nodes = sybils_closest_to(m.target);
          std::erase(reply.nodes, from);  // never echo the asker back
          send_from(sybil, from, Message{std::move(reply)});
        } else if constexpr (std::is_same_v<T, Status>) {
          // Reply only to a handshake we did not initiate this engagement
          // cycle (the victim dialing us). Answering every Status would
          // echo against the victim's re-handshake path forever.
          if (engaged_[index].insert(from).second) {
            ++counters_.status_floods;
            obs::inc(tm_status_floods_);
            send_from(sybil, from, Message{crafted_status()});
          }
        } else if constexpr (std::is_same_v<T, GetDaoHeader>) {
          engaged_[index].insert(from);
          // A node honestly parked at genesis has not reached the fork
          // height; "no header yet" passes the cross-examination on either
          // side of the partition.
          send_from(sybil, from, Message{DaoHeader{}});
        } else if constexpr (std::is_same_v<T, GetBlocks>) {
          ++counters_.withheld_requests;
          obs::inc(tm_withheld_);
          // never served: the starvation half of the eclipse
        }
      },
      *msg);
}

void EclipseAdversary::tick() {
  ++counters_.rounds;
  obs::inc(tm_rounds_);
  // Periodically forget who we already handshook so reaped sessions get
  // re-established; without this one unlucky loss would free a victim slot
  // for an honest peer permanently.
  if (options_.reengage_rounds != 0 &&
      counters_.rounds % options_.reengage_rounds == 0)
    for (auto& set : engaged_) set.clear();

  const NodeId& victim = options_.victim;
  // Table poisoning: every sybil pings the victim (observe() on the Pong
  // path inserts the sender), and one rotating "teller" pushes an
  // unsolicited Neighbors packet of the sybils nearest the victim's own id
  // — the ids its dialer will prefer.
  for (const NodeId& sybil : sybils_) {
    send_from(sybil, victim, Message{Ping{}});
    ++counters_.table_floods;
    obs::inc(tm_table_floods_);
  }
  if (!sybils_.empty()) {
    const NodeId& teller = sybils_[counters_.rounds % sybils_.size()];
    Neighbors n;
    n.nodes = sybils_closest_to(victim);
    send_from(teller, victim, Message{std::move(n)});
    ++counters_.table_floods;
    obs::inc(tm_table_floods_);
  }
  // Slot monopoly: un-engaged sybils push handshakes at the victim (filling
  // its inbound slots) and at its seeds (so the victim's own outbound dials
  // bounce with kTooManyPeers).
  for (std::size_t i = 0; i < sybils_.size(); ++i) {
    push_handshake(i, victim);
    for (const NodeId& seed : options_.slot_targets) push_handshake(i, seed);
  }
  schedule_next();
}

void EclipseAdversary::push_handshake(std::size_t index,
                                      const NodeId& target) {
  if (!engaged_[index].insert(target).second) return;
  ++counters_.status_floods;
  obs::inc(tm_status_floods_);
  send_from(sybils_[index], target, Message{crafted_status()});
}

void EclipseAdversary::reengage() {
  if (!running_) return;
  for (auto& set : engaged_) set.clear();
  for (std::size_t i = 0; i < sybils_.size(); ++i) {
    push_handshake(i, options_.victim);
    for (const NodeId& seed : options_.slot_targets) push_handshake(i, seed);
  }
}

}  // namespace forksim::sim
