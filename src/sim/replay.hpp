// Cross-chain replay ("echo") simulation — the mechanism behind the
// paper's Figure 4 and §3.3.
//
// Ground truth mechanics, reproduced exactly:
//  * the two chains share every pre-fork account (same keys, same balances
//    at the fork block);
//  * a pre-EIP-155 transaction carries no chain id, so its signature is
//    valid on both chains;
//  * an echoed transaction executes on the other chain iff the sender's
//    nonce there matches — which it does as long as the account's histories
//    haven't diverged, and each successful echo *keeps* them in sync;
//  * EIP-155 transactions are bound to one chain and can never echo;
//  * accounts used independently on both chains (split addresses, the
//    recommended defense) diverge and stop being echoable.
//
// The simulation tracks per-account nonces on both chains and pushes every
// transaction through those rules; echo counts per day fall out rather than
// being assumed.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace forksim::sim {

struct ReplayParams {
  /// Pre-fork accounts active on at least one chain after the fork.
  std::size_t shared_accounts = 4000;
  /// Fraction of a chain's transactions sent from shared (pre-fork)
  /// accounts, decaying as users move to fresh addresses.
  double shared_fraction_start = 0.7;
  double shared_fraction_floor = 0.04;
  double shared_fraction_half_life_days = 45;
  /// Probability an attacker rebroadcasts an eligible tx into the other
  /// chain, decaying from the post-fork frenzy to a persistent tail.
  double attack_echo_start = 0.8;
  double attack_echo_floor = 0.05;
  double attack_echo_half_life_days = 30;
  /// Probability the *sender* intends the tx on both chains (benign echo).
  double benign_echo = 0.02;
  /// Day EIP-155 becomes available on each chain (<0 = never). ETH shipped
  /// it Nov 2016 (~day 120 after the fork); ETC Jan 2017 (~day 180).
  double eth_eip155_day = 120;
  double etc_eip155_day = 177;
  /// Adoption ramp: fraction of txs that are replay-protected grows by this
  /// much per day after activation, up to the cap. EIP-155 was opt-in, so
  /// the cap stays below 1 (the paper still sees echoes "even today").
  double eip155_adoption_per_day = 0.01;
  double eip155_adoption_cap = 0.85;
  /// Fraction of shared accounts whose owners split their addresses per
  /// day (the manual defense the Ethereum blog recommended).
  double split_per_day = 0.002;
  /// Where shared-account owners are active. The paper observes that "many
  /// users simply picked one of the two networks to participate in and
  /// ignored the other" — those accounts never diverge and stay echo-able
  /// indefinitely; only owners active on *both* chains diverge.
  double home_eth = 0.70;
  double home_etc = 0.22;  // remainder: active on both chains
};

class ReplaySim {
 public:
  /// One successful echo with ground-truth label and the observable
  /// features analysis::forensics classifies on (the paper's future-work
  /// "malicious versus benign rebroadcasts" question).
  struct EchoSample {
    bool is_attack = false;  // ground truth
    double delay_seconds = 0;
    bool sender_active_on_dest = false;
    bool self_transfer = false;
    double value_ether = 0;
  };

  struct DayStats {
    std::uint64_t eth_txs = 0;
    std::uint64_t etc_txs = 0;
    /// Successful echoes, by destination chain.
    std::uint64_t echoes_into_etc = 0;
    std::uint64_t echoes_into_eth = 0;
    /// Attempts that failed because the destination nonce had diverged.
    std::uint64_t stale_nonce = 0;
    /// Transactions that could not echo because they carried a chain id.
    std::uint64_t protected_txs = 0;

    std::uint64_t total_echoes() const noexcept {
      return echoes_into_etc + echoes_into_eth;
    }
  };

  ReplaySim(ReplayParams params, Rng rng);

  /// Simulate one day given that chain A (ETH) carried `eth_txs` and chain
  /// B (ETC) `etc_txs` transactions.
  DayStats step(double day, std::uint64_t eth_txs, std::uint64_t etc_txs);

  /// Accounts still in sync (echo-capable).
  std::size_t replayable_accounts() const;

  /// Collect labeled samples for every successful echo into `sink`
  /// (nullptr disables; at most `cap` samples are kept).
  void set_sample_sink(std::vector<EchoSample>* sink,
                       std::size_t cap = 200'000) {
    sample_sink_ = sink;
    sample_cap_ = cap;
  }

 private:
  enum class Home : std::uint8_t { kEth, kEtc, kBoth };

  struct AccountState {
    std::uint32_t nonce_eth = 0;
    std::uint32_t nonce_etc = 0;
    bool split = false;  // owner moved to chain-specific addresses
    Home home = Home::kEth;
  };

  double shared_fraction(double day) const;
  double attack_prob(double day) const;
  double protected_fraction(double day, bool on_eth) const;

  ReplayParams params_;
  Rng rng_;
  std::vector<AccountState> accounts_;
  std::vector<EchoSample>* sample_sink_ = nullptr;
  std::size_t sample_cap_ = 0;
  std::vector<std::size_t> eth_active_;  // indices active on ETH
  std::vector<std::size_t> etc_active_;  // indices active on ETC
};

}  // namespace forksim::sim
