// Transaction-volume and contract-mix workload model for the long-horizon
// figures (Fig 2 and the tx streams feeding Fig 4).
//
// Shape calibrated to the paper's measurements: ETH carried roughly 2.5x
// ETC's daily transactions for most of the study window, rising to ~5x in
// March 2017 (the press-coverage influx, ~day 240 after the fork); the
// fraction of transactions that are contract calls was similar on both
// chains until late in the window.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace forksim::sim {

struct WorkloadParams {
  /// ETC's baseline transactions/day shortly after the fork.
  double etc_base_txs = 12000;
  /// Slow organic growth (fraction per day).
  double growth_per_day = 0.002;
  /// ETH:ETC volume ratio before and after the speculation influx.
  double ratio_early = 2.5;
  double ratio_late = 5.0;
  /// Day the influx ramp starts/ends (March 2017 in paper time).
  double influx_start_day = 225;
  double influx_end_day = 250;
  /// Day-to-day lognormal noise sigma.
  double noise_sigma = 0.12;
  /// Contract-call fraction: both chains drift from `contract_start` toward
  /// `contract_end` over the window.
  double contract_start = 0.10;
  double contract_end = 0.38;
  double horizon_days = 270;
};

class WorkloadModel {
 public:
  struct Day {
    std::uint64_t eth_txs = 0;
    std::uint64_t etc_txs = 0;
    double eth_contract_fraction = 0;
    double etc_contract_fraction = 0;
  };

  WorkloadModel(WorkloadParams params, Rng rng)
      : params_(params), rng_(rng) {}

  Day step(double day);

 private:
  double ratio_at(double day) const;

  WorkloadParams params_;
  Rng rng_;
};

}  // namespace forksim::sim
