// Chaos soak harness: the DAO-fork scenario run under injected network
// faults and node churn, with a convergence check at the end.
//
// The paper's partition severed cleanly on a chaotic network — lossy
// links, a mass node exodus, abrupt miner migration. This harness
// reproduces that adversity deterministically: a FaultInjector adds
// message loss / duplication / reordering and a scheduled network-layer
// bisection cut (independent of the consensus fork), while a seeded
// ChurnSchedule crashes and restarts nodes mid-run. The pass criterion is
// the paper's: after the dust settles, every surviving node on each fork
// side agrees on a single canonical head. The whole run, including every
// fault, replays bit-identically from the scenario seed (the report
// carries a fingerprint to prove it).
#pragma once

#include <memory>

#include "p2p/faults.hpp"
#include "sim/scenario.hpp"

namespace forksim::sim {

struct ChaosParams {
  ScenarioParams scenario;

  // message-level faults
  double extra_loss = 0.10;
  double duplicate_prob = 0.02;
  double reorder_prob = 0.05;
  double reorder_delay = 0.5;

  /// Network-layer bisection: a seeded random half of the nodes is cut
  /// off from the other half for [cut_start, cut_start + cut_duration).
  /// Negative cut_start disables the cut.
  double cut_start = -1.0;
  double cut_duration = 60.0;

  /// Fraction of ALL nodes crashed at sampled times in [churn_start,
  /// churn_end]. Bootstrap anchors (the first node on each side) and
  /// miner hosts are exempt — mining operations and seed nodes were the
  /// stable core of the real network; churn hits the long tail.
  double churn_fraction = 0.20;
  double churn_start = 120.0;
  double churn_end = 900.0;
  double mean_downtime = 180.0;
  /// Probability a crashed node ever comes back (< 1 models the exodus).
  double restart_prob = 0.8;

  /// Mining (and chaos) phase length, then a settle window in which the
  /// network must converge.
  double mining_duration = 2400.0;
  double settle_deadline = 1200.0;
};

struct ChaosReport {
  bool converged = false;
  /// Seconds from mining stop to per-side head agreement (-1 = never).
  double time_to_convergence = -1.0;
  core::BlockNumber height_eth = 0;
  core::BlockNumber height_etc = 0;
  std::size_t survivors_eth = 0;
  std::size_t survivors_etc = 0;
  std::size_t crashes = 0;
  std::size_t restarts = 0;
  // resilience telemetry, summed over surviving nodes
  std::uint64_t sync_timeouts = 0;
  std::uint64_t sync_retries = 0;
  std::uint64_t dial_attempts = 0;
  std::uint64_t peers_banned = 0;
  std::uint64_t messages_sent = 0;
  p2p::FaultCounters faults;
  /// Full telemetry snapshot of the run (every layer's registry metrics).
  obs::Snapshot telemetry;
  /// Digest of the end state (per-node heads, heights, counters, and the
  /// telemetry snapshot): equal across two runs iff they were
  /// bit-identical.
  Hash256 fingerprint;
};

class ChaosRunner {
 public:
  explicit ChaosRunner(ChaosParams params);

  ForkScenario& scenario() noexcept { return *scenario_; }
  p2p::FaultInjector& faults() noexcept { return *faults_; }
  const p2p::ChurnSchedule& churn() const noexcept { return churn_; }
  /// Live registry for the run (snapshot lands in ChaosReport::telemetry).
  obs::Registry& telemetry() noexcept { return registry_; }
  obs::EventTracer& tracer() noexcept { return tracer_; }

  /// Every running node on each side shares one head and both sides have
  /// crossed the fork block (so the heads are provably per-side).
  bool converged() const;

  /// Drive the whole timeline and report.
  ChaosReport run();

 private:
  void install_cut();
  void install_churn();
  void set_node_mining(std::size_t node_index, bool on);
  Hash256 fingerprint(const obs::Snapshot& telemetry) const;

  ChaosParams params_;
  Rng rng_;
  // Declared before scenario_ so they outlive it: nodes emit trace events
  // from shutdown() during ~ForkScenario.
  obs::Registry registry_;
  obs::EventTracer tracer_;
  std::unique_ptr<ForkScenario> scenario_;
  std::unique_ptr<p2p::FaultInjector> faults_;
  p2p::ChurnSchedule churn_;
  std::size_t crashes_ = 0;
  std::size_t restarts_ = 0;
};

}  // namespace forksim::sim
