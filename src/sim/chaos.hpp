// Chaos soak harness: the DAO-fork scenario run under injected network
// faults and node churn, with a convergence check at the end.
//
// The paper's partition severed cleanly on a chaotic network — lossy
// links, a mass node exodus, abrupt miner migration. This harness
// reproduces that adversity deterministically: a FaultInjector adds
// message loss / duplication / reordering and a scheduled network-layer
// bisection cut (independent of the consensus fork), while a seeded
// ChurnSchedule crashes and restarts nodes mid-run. The pass criterion is
// the paper's: after the dust settles, every surviving node on each fork
// side agrees on a single canonical head. The whole run, including every
// fault, replays bit-identically from the scenario seed (the report
// carries a fingerprint to prove it).
#pragma once

#include <memory>

#include "db/blockstore.hpp"
#include "p2p/faults.hpp"
#include "sim/adversary.hpp"
#include "sim/scenario.hpp"

namespace forksim::sim {

struct ChaosParams {
  ScenarioParams scenario;

  // message-level faults
  double extra_loss = 0.10;
  double duplicate_prob = 0.02;
  double reorder_prob = 0.05;
  double reorder_delay = 0.5;

  /// Network-layer partition: a seeded random `partitioned_share` fraction
  /// of the nodes is cut off from the rest for [cut_start, cut_start +
  /// cut_duration). Negative cut_start disables the cut. The default share
  /// of 0.5 reproduces the historical bisection draw for draw (the shuffle
  /// consumes the same rng sequence regardless of the share).
  double cut_start = -1.0;
  double cut_duration = 60.0;
  double partitioned_share = 0.5;

  /// Fraction of ALL nodes crashed at sampled times in [churn_start,
  /// churn_end]. Bootstrap anchors (the first node on each side) and
  /// miner hosts are exempt — mining operations and seed nodes were the
  /// stable core of the real network; churn hits the long tail.
  double churn_fraction = 0.20;
  double churn_start = 120.0;
  double churn_end = 900.0;
  double mean_downtime = 180.0;
  /// Probability a crashed node ever comes back (< 1 models the exodus).
  double restart_prob = 0.8;

  /// Durability layer. With cold_restart_prob > 0, every node gets a
  /// WAL-backed block store on a per-node SimDisk, and each scheduled
  /// restart is — with this probability — a COLD restart: the process
  /// loses its in-memory chain and mempool, the disk's crash faults hit
  /// the log tail, and the node recovers by checksum-scanning the store,
  /// replaying the surviving prefix, and re-syncing the lost tail from
  /// peers. With cold_restart_prob == 0 (the default) no stores exist, no
  /// extra Rng draws happen, and runs stay bit-identical to builds without
  /// this layer. Restarts that miss the coin stay warm (the historical
  /// "chain survives in memory" behavior).
  double cold_restart_prob = 0.0;
  /// Crash-time disk faults (torn writes, tail truncation, bit rot)
  /// applied to a cold-restarting node's store before recovery runs.
  db::StorageFaults storage_faults;

  /// Mining (and chaos) phase length, then a settle window in which the
  /// network must converge.
  double mining_duration = 2400.0;
  double settle_deadline = 1200.0;

  /// Byzantine adversaries mixed into the population. With fraction > 0,
  /// that share of the nodes (never bootstrap anchors or miner hosts —
  /// deterministically the highest-indexed eligible nodes, exempt from
  /// churn) run hostile agents cycling through the enabled kinds, and every
  /// honest node switches HardeningOptions on. With fraction == 0 nothing
  /// here consumes rng draws or registers telemetry, so adversary-free runs
  /// replay bit-identically to builds without this layer.
  struct AdversaryMix {
    double fraction = 0.0;
    /// Sim time the agents start attacking, and their round interval.
    double start = 60.0;
    double interval = 12.0;
    bool forgers = true;
    bool withholders = true;
    bool spammers = true;
    bool equivocators = true;
  } adversaries;

  /// Eclipse layer: with budget > 0, each of `victims` nodes gets a
  /// dedicated sybil swarm (an EclipseAdversary hosted on a high-indexed
  /// eligible node) grinding `budget` NodeIds into the victim's near
  /// buckets, poisoning its table, monopolizing its slots and its seeds',
  /// and withholding every block. Three attack rounds after `start` the
  /// runner warm-reboots each victim into the entrenched swarm — the
  /// canonical reboot-then-eclipse. With `defenses` true every honest node
  /// switches EclipseDefenseOptions on (diversity caps, slot split,
  /// ping-before-evict, feelers, anchors, the isolation detector); false
  /// measures the undefended baseline. Victims and swarm hosts are
  /// churn-exempt (a victim that happens to crash is no test of an
  /// eclipse). With budget == 0 nothing here consumes rng draws, installs
  /// region oracles, or registers telemetry: eclipse-free runs replay
  /// bit-identically to builds without this layer.
  struct EclipseParams {
    std::size_t budget = 0;
    std::size_t victims = 1;
    bool defenses = true;
    double start = 30.0;
    double interval = 2.0;
  } eclipse;

  /// Availability probe: a sim-time sampler that, every `interval`
  /// seconds, scores each fork side against a quorum threshold — the side
  /// is "available" when at least `quorum_fraction` of its honest nodes
  /// are live AND within `max_head_lag` blocks of the side's best height —
  /// and buckets samples into pre-failure / during-failure / post-heal
  /// phases around [failure_start, failure_end). Disabled by default: no
  /// samples are taken, no extra fields fold into the fingerprint, and
  /// runs replay bit-identically to builds without the probe.
  struct AvailabilityProbe {
    bool enabled = false;
    double interval = 5.0;
    double quorum_fraction = 0.6;
    core::BlockNumber max_head_lag = 2;
    /// Seconds the network must stay above quorum after failure_end
    /// before the first such instant counts as "healed" (a single lucky
    /// sample is not a recovery).
    double heal_sustain = 30.0;
    /// Phase boundaries. Negative values derive them from the composed
    /// failure windows: the cut window when a cut is scheduled, else the
    /// churn window.
    double failure_start = -1.0;
    double failure_end = -1.0;
  } probe;

  /// Throws std::invalid_argument naming the offending field when a knob
  /// is out of range (probabilities outside [0,1], negative durations,
  /// an inverted churn window). ChaosRunner calls this on construction so
  /// a typo'd sweep fails loudly instead of silently running nonsense.
  void validate() const;
};

/// One availability probe sample (taken every AvailabilityProbe::interval).
struct AvailabilitySample {
  double t = 0.0;
  bool eth_ok = false;
  bool etc_ok = false;
  /// Both sides met quorum at this instant.
  bool available() const noexcept { return eth_ok && etc_ok; }
};

/// Availability accounting over one failure episode.
struct AvailabilityStats {
  /// Fraction of samples available per phase; -1 = phase had no samples.
  double pre = -1.0;
  double during_failure = -1.0;
  double post = -1.0;
  /// Total sim-time below quorum (samples * interval), whole run.
  double degraded_seconds = 0.0;
  /// Seconds from failure_end to the first instant after it where
  /// availability held for heal_sustain seconds (or through the end of
  /// sampling); -1 = never healed, 0 = quorum never lost after the
  /// failure window closed.
  double time_to_heal = -1.0;
  std::size_t samples = 0;
};

/// Pure fold of a sample timeline into per-phase stats; separated from the
/// runner so hand-built timelines can pin exact values in tests.
AvailabilityStats summarize_availability(
    const std::vector<AvailabilitySample>& samples,
    const ChaosParams::AvailabilityProbe& probe);

struct ChaosReport {
  bool converged = false;
  /// Seconds from mining stop to per-side head agreement (-1 = never).
  double time_to_convergence = -1.0;
  core::BlockNumber height_eth = 0;
  core::BlockNumber height_etc = 0;
  std::size_t survivors_eth = 0;
  std::size_t survivors_etc = 0;
  std::size_t crashes = 0;
  std::size_t restarts = 0;
  // durability layer (all zero when ChaosParams::cold_restart_prob == 0)
  std::size_t cold_restarts = 0;
  std::uint64_t store_appends = 0;
  std::uint64_t store_records_scanned = 0;
  std::uint64_t store_corrupt_records = 0;
  std::uint64_t store_blocks_replayed = 0;
  /// Checksummed records the chain refused on replay — must stay 0: every
  /// corrupt record is caught by the scan, never imported.
  std::uint64_t store_replay_rejected = 0;
  double recovery_seconds = 0.0;  // modeled sim-time spent recovering
  std::uint64_t disk_torn_writes = 0;
  std::uint64_t disk_tail_truncations = 0;
  std::uint64_t disk_bits_flipped = 0;
  // resilience telemetry, summed over surviving nodes
  std::uint64_t sync_timeouts = 0;
  std::uint64_t sync_retries = 0;
  std::uint64_t dial_attempts = 0;
  std::uint64_t peers_banned = 0;
  std::uint64_t messages_sent = 0;
  // Byzantine layer (all zero when AdversaryMix::fraction == 0)
  std::size_t adversaries = 0;
  std::uint64_t blocks_forged = 0;
  std::uint64_t phantom_announcements = 0;
  std::uint64_t txs_spammed = 0;
  std::uint64_t equivocations = 0;
  /// Adversaries score-banned by at least one honest node.
  std::size_t attackers_banned = 0;
  /// Honest-node pairs where one ever banned the other (should stay 0:
  /// defenses must not friendly-fire).
  std::uint64_t honest_ban_events = 0;
  // honest defense work, summed over honest nodes
  std::uint64_t wasted_executions = 0;
  std::uint64_t invalid_cache_hits = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t txpool_evictions = 0;
  p2p::FaultCounters faults;
  // Eclipse layer (all zero/empty when EclipseParams::budget == 0)
  std::size_t eclipse_victims = 0;
  std::size_t eclipse_sybils = 0;
  std::uint64_t eclipse_table_floods = 0;
  std::uint64_t eclipse_status_floods = 0;
  std::uint64_t eclipse_lookups_answered = 0;
  std::uint64_t eclipse_withheld_requests = 0;
  /// Isolation detector firings across honest nodes (one-shot per episode).
  std::uint64_t eclipse_suspicions = 0;
  std::uint64_t eclipse_recoveries = 0;
  /// Per-victim sim-seconds spent running with no honest active peer,
  /// indexed in victim order.
  std::vector<double> isolation_seconds;
  /// Victims still holding a sybil-only (or empty) peer set at run end —
  /// the attack's success count. Defended runs must drive this to zero.
  std::size_t victims_eclipsed_at_end = 0;
  /// Availability probe results (all -1 / 0 when the probe is disabled).
  AvailabilityStats availability;
  // Client-diversity layer (all zero/empty when scenario.clients is off).
  /// Fork-monitor totals summed over all nodes: blocks refused as disputed
  /// (header-followed, never blamed), `divergence` events raised, and
  /// consensus patches applied.
  std::uint64_t disputed_blocks = 0;
  std::uint64_t divergence_events = 0;
  std::uint64_t consensus_patches = 0;
  /// Per-family scoring (probe samples folded per family; one entry per
  /// mix slice, in mix order). divergence_seconds is the sim-time during
  /// which at least one running member of the family held a head its fork
  /// side's anchor does not consider canonical — the family was off on a
  /// competing branch.
  struct ClientFamilyReport {
    ClientFamily family = ClientFamily::kGeth;
    std::size_t nodes = 0;
    AvailabilityStats availability;
    double divergence_seconds = 0.0;
  };
  std::vector<ClientFamilyReport> client_families;
  /// Full telemetry snapshot of the run (every layer's registry metrics).
  obs::Snapshot telemetry;
  /// Digest of the end state (per-node heads, heights, counters, and the
  /// telemetry snapshot): equal across two runs iff they were
  /// bit-identical.
  Hash256 fingerprint;
};

class ChaosRunner {
 public:
  explicit ChaosRunner(ChaosParams params);

  ForkScenario& scenario() noexcept { return *scenario_; }
  p2p::FaultInjector& faults() noexcept { return *faults_; }
  const p2p::ChurnSchedule& churn() const noexcept { return churn_; }
  const std::vector<std::unique_ptr<Adversary>>& adversaries() const noexcept {
    return adversaries_;
  }
  /// Is node `i` hosting a Byzantine agent?
  bool is_adversary(std::size_t i) const {
    return adversary_hosts_.contains(i);
  }
  const std::vector<std::unique_ptr<EclipseAdversary>>& eclipse_adversaries()
      const noexcept {
    return eclipse_adversaries_;
  }
  /// Node indices under sybil attack, in victim order (empty when the
  /// eclipse layer is off).
  const std::vector<std::size_t>& eclipse_victims() const noexcept {
    return eclipse_victims_;
  }
  /// Is `id` a minted sybil of any swarm in this run?
  bool is_sybil_id(const p2p::NodeId& id) const;
  /// Is victim node `idx` currently running with no honest active peer?
  bool victim_isolated(std::size_t idx) const;
  /// Node `i`'s block store (null when the durability layer is off).
  db::BlockStore* store(std::size_t i) {
    return i < stores_.size() ? stores_[i].get() : nullptr;
  }
  /// Bootstrap list a churned node rejoins through: its own fork side's
  /// anchor, so a post-fork restart pulls toward the right network instead
  /// of burning dials on peers that will DAO-challenge it away.
  std::vector<p2p::NodeId> rejoin_bootstrap_for(std::size_t i) const;
  /// Live registry for the run (snapshot lands in ChaosReport::telemetry).
  obs::Registry& telemetry() noexcept { return registry_; }
  obs::EventTracer& tracer() noexcept { return tracer_; }
  /// Node indices severed from the rest by the scheduled partition cut
  /// (empty when the cut is disabled); test hook for partitioned_share.
  const std::vector<std::size_t>& cut_members() const noexcept {
    return cut_members_;
  }
  /// Availability samples taken so far (empty unless probe.enabled).
  const std::vector<AvailabilitySample>& availability_samples()
      const noexcept {
    return availability_samples_;
  }
  /// Per-family sample timelines, indexed like scenario.clients.mix (empty
  /// unless both the probe and the clients layer are enabled). A family
  /// sample sets eth_ok == etc_ok == "quorum of the family's honest
  /// members is live and synced to its own side's best height".
  const std::vector<std::vector<AvailabilitySample>>& family_samples()
      const noexcept {
    return family_samples_;
  }
  /// The phase window the probe actually used ([failure_start,
  /// failure_end), explicit or derived from the cut/churn windows).
  const ChaosParams::AvailabilityProbe& effective_probe() const noexcept {
    return probe_;
  }

  /// Every running node on each side shares one head and both sides have
  /// crossed the fork block (so the heads are provably per-side).
  bool converged() const;

  /// Drive the whole timeline and report.
  ChaosReport run();

 private:
  void install_cut();
  void select_adversary_hosts();
  void select_eclipse_cast();
  void install_stores();
  void install_churn();
  void install_adversaries();
  void install_eclipse();
  void eclipse_probe_tick();
  void install_probe();
  void probe_tick();
  bool side_meets_quorum(bool eth_side) const;
  bool family_meets_quorum(ClientFamily family) const;
  bool family_diverged(ClientFamily family) const;
  void set_node_mining(std::size_t node_index, bool on);
  Hash256 fingerprint(const obs::Snapshot& telemetry) const;

  ChaosParams params_;
  Rng rng_;
  // Declared before scenario_ so they outlive it: nodes emit trace events
  // from shutdown() during ~ForkScenario.
  obs::Registry registry_;
  obs::EventTracer tracer_;
  std::unique_ptr<ForkScenario> scenario_;
  std::unique_ptr<p2p::FaultInjector> faults_;
  p2p::ChurnSchedule churn_;
  std::vector<std::unique_ptr<Adversary>> adversaries_;
  std::unordered_set<std::size_t> adversary_hosts_;
  /// Eclipse layer state (all empty when EclipseParams::budget == 0).
  /// Declared after scenario_ like adversaries_: swarms detach before the
  /// nodes they ride on are destroyed.
  std::vector<std::unique_ptr<EclipseAdversary>> eclipse_adversaries_;
  std::vector<std::size_t> eclipse_victims_;
  std::vector<std::size_t> eclipse_hosts_;
  /// Victims + swarm hosts: exempt from churn.
  std::unordered_set<std::size_t> eclipse_protected_;
  std::vector<double> isolation_seconds_;
  /// Per-node durable storage, indexed by node (empty when the durability
  /// layer is off; one SimDisk per node so crash faults stay independent).
  std::vector<std::unique_ptr<db::SimDisk>> disks_;
  std::vector<std::unique_ptr<db::BlockStore>> stores_;
  std::vector<std::size_t> cut_members_;
  /// Resolved probe config (phase window derived when not explicit).
  ChaosParams::AvailabilityProbe probe_;
  std::vector<AvailabilitySample> availability_samples_;
  /// Per-family probe state, indexed like scenario.clients.mix (all empty
  /// unless both the probe and the clients layer are enabled).
  std::vector<ClientFamily> family_list_;
  std::vector<std::vector<AvailabilitySample>> family_samples_;
  std::vector<double> family_divergence_seconds_;
  std::size_t crashes_ = 0;
  std::size_t restarts_ = 0;
  std::size_t cold_restarts_ = 0;
  std::uint64_t store_replay_rejected_ = 0;
  double recovery_seconds_ = 0.0;
};

}  // namespace forksim::sim
