// Internet-scale block-propagation engine: O(thousands) of nodes on a
// degree-configurable gossip topology with region-based latency.
//
// The full-node network (node.hpp) is protocol-complete — discovery,
// sessions, EVM-executing chains — and tops out around tens of nodes per
// run. The paper's partition, though, played out on ~25k nodes, and the
// geography/degree effects the related measurement papers report
// (propagation percentiles, mining fairness vs. latency) only appear at
// that scale. ScaleSim reproduces them with a block-granular model built
// for the purpose:
//
//   * flat indexed node tables — two parallel arrays (head block, head
//     height) instead of per-node heap objects;
//   * an append-only block arena (parent / height / miner / mined-at as
//     POD records) plus one flat bitset arena for per-(node, block)
//     dedupe — no per-message or per-block allocation on the hot path;
//   * the profiled 4-ary TimedQueue from p2p/scheduler.hpp carrying POD
//     delivery events directly (no std::function, no closures);
//   * gossip = flood-forward-on-first-sight over the Topology CSR, with
//     per-hop latency from the GeoModel (or a uniform base) plus seeded
//     lognormal jitter;
//   * mining = the exact PoW race abstraction fastsim.hpp validates:
//     exponential inter-block times, a weighted winner, each block
//     extending its miner's CURRENT head — so stale rates and fairness
//     emerge from propagation latency rather than being parameterized.
//
// Chain state per node is a head pointer into the shared arena (data
// availability is not modeled — this engine measures propagation and
// fork dynamics, not storage). Fork choice: height, then first-seen,
// with the globally deterministic arena-index tie-break, so a healed
// network provably converges to one head once the queue drains. The
// whole run replays bit-identically from the seed; ScaleReport carries a
// fingerprint over every node's final head to prove it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "p2p/geo.hpp"
#include "p2p/scheduler.hpp"
#include "p2p/topology.hpp"
#include "support/rng.hpp"

namespace forksim::sim {

struct ScaleParams {
  std::size_t nodes = 1000;
  p2p::TopologyParams topology;  // `enabled` is ignored here; always used
  /// Region latency. geo.enabled == false gives a flat network where
  /// every hop costs `uniform_base` plus jitter.
  p2p::GeoParams geo;
  double uniform_base = 0.05;
  double jitter_scale = 0.01;
  double jitter_sigma = 0.4;
  /// Modeled per-hop processing (validate + re-announce) delay, seconds.
  double relay_delay = 0.005;

  /// Mining: `miners` evenly spread nodes with equal hashpower, racing at
  /// one block per `block_interval` seconds in expectation.
  std::size_t miners = 16;
  double block_interval = 13.0;
  /// Mining horizon; deliveries drain past it until the queue empties.
  double duration = 3600.0;

  /// Optional partition: a seeded `cut_fraction` of nodes is severed from
  /// the rest during [cut_start, cut_start + cut_duration). Negative
  /// cut_start disables the cut (and consumes no rng draws).
  double cut_start = -1.0;
  double cut_duration = 0.0;
  double cut_fraction = 0.5;

  std::uint64_t seed = 1;
  /// Keep every accepted delivery's (arrival - mined_at) delta for the
  /// propagation percentiles. Costs 8 bytes per delivery; turn off for
  /// memory-tight sweeps (percentiles then report 0).
  bool record_arrivals = true;

  /// Field-named std::invalid_argument on out-of-range knobs; also runs
  /// topology.validate(nodes) and geo.validate() (when enabled).
  void validate() const;
};

/// Per-region outcome slice (one entry per GeoParams region; a single
/// synthetic "all" region when geo is disabled).
struct RegionStats {
  std::string name;
  std::size_t population = 0;
  std::size_t miners = 0;
  std::uint64_t blocks_mined = 0;
  std::uint64_t blocks_canonical = 0;
  /// Mined-but-not-canonical share of this region's blocks.
  double stale_rate = 0.0;
  /// Canonical-win share divided by hashpower share (1.0 = perfectly
  /// fair; < 1 = the region's latency costs it blocks).
  double fairness = 0.0;
};

struct ScaleReport {
  // chain outcome
  std::uint64_t blocks_mined = 0;
  std::uint64_t canonical_height = 0;
  std::uint64_t stale_blocks = 0;
  double stale_rate = 0.0;
  /// All nodes finished on the same head (guaranteed after a drain on a
  /// healed connected graph — see fork-choice note above).
  bool converged = false;
  std::size_t distinct_heads = 0;

  // propagation
  std::uint64_t deliveries = 0;       // first-sight acceptances
  std::uint64_t dup_suppressed = 0;   // redundant floods absorbed
  std::uint64_t cut_dropped = 0;      // messages severed by the partition
  double prop_p50 = 0.0, prop_p90 = 0.0, prop_p99 = 0.0, prop_mean = 0.0;

  // fairness (equal-hashpower miners: every win-share should be 1/miners)
  double fairness_max_dev = 0.0;  // max |share - expected| / expected
  double fairness_gini = 0.0;     // gini over per-miner win counts
  std::vector<RegionStats> regions;

  // engine accounting
  std::uint64_t events = 0;
  p2p::TimedQueueProfile scheduler;
  Hash256 topology_digest;
  /// Keccak over every node's final (head, height), the arena size, and
  /// the delivery counters: equal across two runs iff bit-identical.
  Hash256 fingerprint;
};

class ScaleSim {
 public:
  /// Builds the topology and (when enabled) the geo placement; validates
  /// eagerly.
  explicit ScaleSim(ScaleParams params);

  const ScaleParams& params() const noexcept { return params_; }
  const p2p::Topology& topology() const noexcept { return topo_; }
  /// Null when geo is disabled.
  const p2p::GeoModel* geo() const noexcept {
    return geo_ ? &*geo_ : nullptr;
  }
  /// Nodes on the severed side of the cut (empty when disabled).
  std::size_t cut_members() const noexcept { return cut_size_; }

  /// Drive the whole run to queue-drain and report. One-shot.
  ScaleReport run();

 private:
  struct BlockRec {
    std::uint32_t parent;  // arena index; kGenesis for height-1 blocks
    std::uint32_t height;
    std::uint32_t miner;   // node index
    double mined_at;
  };
  static constexpr std::uint32_t kGenesis = 0xffffffffu;
  static constexpr std::uint32_t kMineEvent = 0xffffffffu;

  struct Ev {
    std::uint32_t dst;    // node index, or kMineEvent
    std::uint32_t block;  // arena index (unused for mine events)
  };

  void on_mine(double now);
  void on_deliver(std::uint32_t dst, std::uint32_t block, double now);
  double link_delay(std::uint32_t a, std::uint32_t b);
  bool cut_severs(std::uint32_t a, std::uint32_t b, double now) const;
  std::uint32_t new_block(std::uint32_t parent, std::uint32_t height,
                          std::uint32_t miner, double now);
  ScaleReport finalize();

  ScaleParams params_;
  Rng rng_;
  p2p::Topology topo_;
  std::optional<p2p::GeoModel> geo_;

  // flat node table (struct-of-arrays)
  std::vector<std::uint32_t> head_block_;   // kGenesis = still at genesis
  std::vector<std::uint32_t> head_height_;
  std::vector<std::uint8_t> cut_side_;      // 1 = severed group
  std::size_t cut_size_ = 0;

  // block arena + flat seen-bitset arena (words_per_block_ words/block)
  std::vector<BlockRec> blocks_;
  std::vector<std::uint64_t> seen_;
  std::size_t words_per_block_ = 0;

  std::vector<std::uint32_t> miner_nodes_;
  std::vector<std::uint64_t> miner_wins_;   // canonical wins, filled at end
  std::vector<std::uint64_t> miner_mined_;

  p2p::TimedQueue<Ev> queue_;
  std::vector<double> arrival_deltas_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t cut_dropped_ = 0;
  std::uint64_t events_ = 0;
  bool ran_ = false;
};

}  // namespace forksim::sim
