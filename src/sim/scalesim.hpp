// Internet-scale block-propagation engine: O(thousands) of nodes on a
// degree-configurable gossip topology with region-based latency, executed
// by a sharded conservative-PDES core.
//
// The full-node network (node.hpp) is protocol-complete — discovery,
// sessions, EVM-executing chains — and tops out around tens of nodes per
// run. The paper's partition, though, played out on ~25k nodes, and the
// geography/degree effects the related measurement papers report
// (propagation percentiles, mining fairness vs. latency) only appear at
// that scale. ScaleSim reproduces them with a block-granular model built
// for the purpose:
//
//   * flat indexed node tables — two parallel arrays (head block, head
//     height) instead of per-node heap objects;
//   * an append-only block arena (parent / height / miner / mined-at as
//     POD records) plus one flat node-major seen-bitset arena for
//     per-(node, block) dedupe — no per-message or per-block allocation on
//     the hot path;
//   * per-shard KeyedTimedQueues (p2p/scheduler.hpp) carrying POD delivery
//     events directly (no std::function, no closures);
//   * gossip = flood-forward-on-first-sight over the Topology CSR, with
//     per-hop latency from the GeoModel (or a uniform base) plus seeded
//     lognormal jitter;
//   * mining = the exact PoW race abstraction fastsim.hpp validates:
//     exponential inter-block times, a weighted winner, each block
//     extending its miner's CURRENT head — so stale rates and fairness
//     emerge from propagation latency rather than being parameterized.
//
// Parallel execution (num_shards > 1) is conservative PDES: nodes are
// partitioned into contiguous index ranges, one worker thread per shard,
// executing in lock-step epochs bounded by the LOOKAHEAD — the minimum
// cross-shard one-way latency derived from the topology's cross-shard
// edges, the geo RTT floor (or the uniform base), and the relay delay. A
// message sent during epoch [T, T + L) cannot arrive anywhere off-shard
// before T + L, so every shard can safely drain its own queue up to the
// epoch horizon, buffer cross-shard sends in per-shard mailboxes, and
// merge them at the barrier in deterministic (src-shard, send-order)
// order before the next epoch begins.
//
// Determinism is execution-order-invariant by construction, so EVERY shard
// count produces the bit-identical report (fingerprint, counters, region
// stats, percentiles) — pinned by tests/parallel_sim_test.cpp:
//
//   * randomness is attributed to identities, not to execution order: the
//     mining race (winner + inter-block gaps) is pre-drawn sequentially
//     from the run seed before any worker starts, and per-hop jitter comes
//     from the FORWARDING NODE's private stream (seeded from the run seed
//     and the node index), consumed in that node's event order;
//   * block arena slots are pre-assigned: block i is the i-th mine event,
//     so the height-then-arena-index fork choice never depends on which
//     thread allocated first;
//   * event order is (time, key) with identity-derived keys (mine slot /
//     block + destination), not push order — see KeyedTimedQueue.
//
// Chain state per node is a head pointer into the shared arena (data
// availability is not modeled — this engine measures propagation and
// fork dynamics, not storage). Fork choice: height, then first-seen,
// with the globally deterministic arena-index tie-break, so a healed
// network provably converges to one head once the queue drains. The
// whole run replays bit-identically from the seed; ScaleReport carries a
// fingerprint over every node's final head to prove it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "p2p/geo.hpp"
#include "p2p/scheduler.hpp"
#include "p2p/topology.hpp"
#include "support/rng.hpp"

namespace forksim::obs {
class Registry;
}

namespace forksim::sim {

struct ScaleParams {
  std::size_t nodes = 1000;
  p2p::TopologyParams topology;  // `enabled` is ignored here; always used
  /// Region latency. geo.enabled == false gives a flat network where
  /// every hop costs `uniform_base` plus jitter.
  p2p::GeoParams geo;
  double uniform_base = 0.05;
  double jitter_scale = 0.01;
  double jitter_sigma = 0.4;
  /// Modeled per-hop processing (validate + re-announce) delay, seconds.
  double relay_delay = 0.005;

  /// Mining: `miners` evenly spread nodes with equal hashpower, racing at
  /// one block per `block_interval` seconds in expectation.
  std::size_t miners = 16;
  double block_interval = 13.0;
  /// Mining horizon; deliveries drain past it until the queue empties.
  double duration = 3600.0;

  /// Optional partition: a seeded `cut_fraction` of nodes is severed from
  /// the rest during [cut_start, cut_start + cut_duration). Negative
  /// cut_start disables the cut (and consumes no rng draws).
  double cut_start = -1.0;
  double cut_duration = 0.0;
  double cut_fraction = 0.5;

  std::uint64_t seed = 1;
  /// Keep every accepted delivery's (arrival - mined_at) delta for the
  /// propagation percentiles. Costs 8 bytes per delivery; turn off for
  /// memory-tight sweeps (percentiles then report 0).
  bool record_arrivals = true;

  /// Worker shards for the conservative-PDES core. 1 (the default) runs
  /// the whole event population on the calling thread; K > 1 partitions
  /// nodes into K contiguous ranges, each driven by its own thread in
  /// lock-step lookahead epochs. Every value produces the bit-identical
  /// report; K > 1 additionally requires a positive cross-shard latency
  /// floor (uniform_base/geo RTT + relay_delay), checked at construction.
  std::size_t num_shards = 1;

  /// Test hook: when true, every cross-shard send is checked against the
  /// conservative invariant (arrival >= the sending epoch's horizon) and
  /// the audit tallies land in the report. Zero cost when off.
  bool audit_epochs = false;

  /// Field-named std::invalid_argument on out-of-range knobs; also runs
  /// topology.validate(nodes) and geo.validate() (when enabled).
  void validate() const;
};

/// Per-region outcome slice (one entry per GeoParams region; a single
/// synthetic "all" region when geo is disabled).
struct RegionStats {
  std::string name;
  std::size_t population = 0;
  std::size_t miners = 0;
  std::uint64_t blocks_mined = 0;
  std::uint64_t blocks_canonical = 0;
  /// Mined-but-not-canonical share of this region's blocks.
  double stale_rate = 0.0;
  /// Canonical-win share divided by hashpower share (1.0 = perfectly
  /// fair; < 1 = the region's latency costs it blocks).
  double fairness = 0.0;
};

struct ScaleReport {
  // chain outcome
  std::uint64_t blocks_mined = 0;
  std::uint64_t canonical_height = 0;
  std::uint64_t stale_blocks = 0;
  double stale_rate = 0.0;
  /// All nodes finished on the same head (guaranteed after a drain on a
  /// healed connected graph — see fork-choice note above).
  bool converged = false;
  std::size_t distinct_heads = 0;

  // propagation
  std::uint64_t deliveries = 0;       // first-sight acceptances
  std::uint64_t dup_suppressed = 0;   // redundant floods absorbed
  std::uint64_t cut_dropped = 0;      // messages severed by the partition
  double prop_p50 = 0.0, prop_p90 = 0.0, prop_p99 = 0.0, prop_mean = 0.0;

  // fairness (equal-hashpower miners: every win-share should be 1/miners)
  double fairness_max_dev = 0.0;  // max |share - expected| / expected
  double fairness_gini = 0.0;     // gini over per-miner win counts
  std::vector<RegionStats> regions;

  // engine accounting
  std::uint64_t events = 0;
  p2p::TimedQueueProfile scheduler;
  Hash256 topology_digest;

  // parallel-engine accounting. The OUTCOME above is bit-identical across
  // shard counts; these describe the execution shape (and so legitimately
  // vary with num_shards) — none of them folds into the fingerprint.
  std::size_t shards = 1;
  std::uint64_t epochs = 0;
  std::uint64_t cross_shard_messages = 0;
  double lookahead = 0.0;
  /// Conservative-invariant audit (params.audit_epochs only): cross-shard
  /// sends checked, and how many arrived before the sending epoch's
  /// horizon. Any violation is a correctness bug in the epoch bound.
  std::uint64_t audit_mail_checked = 0;
  std::uint64_t audit_violations = 0;

  /// Keccak over every node's final (head, height), the arena size, and
  /// the delivery counters: equal across two runs iff bit-identical.
  Hash256 fingerprint;
};

class ScaleSim {
 public:
  /// Builds the topology, the (optional) geo placement, the seeded cut
  /// membership, the pre-drawn mining schedule, and the shard partition;
  /// validates eagerly (including the K > 1 lookahead-floor requirement).
  explicit ScaleSim(ScaleParams params);

  const ScaleParams& params() const noexcept { return params_; }
  const p2p::Topology& topology() const noexcept { return topo_; }
  /// Null when geo is disabled.
  const p2p::GeoModel* geo() const noexcept {
    return geo_ ? &*geo_ : nullptr;
  }
  /// Nodes on the severed side of the cut (empty when disabled).
  std::size_t cut_members() const noexcept { return cut_size_; }

  /// Owning shard of a node (contiguous ranges, ShardPlan::shard_for).
  std::uint32_t shard_of(std::uint32_t node) const noexcept {
    return shard_of_[node];
  }
  /// The conservative epoch bound: minimum over cross-shard topology edges
  /// of (one-way base latency + relay delay). +inf when no edge crosses a
  /// shard boundary (shards never talk); meaningless (0) when num_shards
  /// == 1. Tests assert it never exceeds any actual link's latency floor.
  double lookahead() const noexcept { return lookahead_; }

  /// Drive the whole run to queue-drain and report. One-shot.
  ScaleReport run();

  /// Register scalesim.* OUTCOME counters (deliveries, duplicates, cut
  /// drops, events, blocks mined) in `reg` after run(), folding the
  /// per-shard tallies in ascending shard order so the merged telemetry is
  /// bit-identical across shard counts. Execution-shape numbers (epochs,
  /// cross-shard mail) stay report-only for the same reason the
  /// fingerprint excludes them. No-op before run().
  void export_telemetry(obs::Registry& reg) const;

 private:
  struct BlockRec {
    std::uint32_t parent;  // arena index; kGenesis for height-1 blocks
    std::uint32_t height;
    std::uint32_t miner;   // node index
    double mined_at;
  };
  /// One pre-drawn slot of the mining race: who wins the round and when.
  /// Slot i IS arena index i — parent/height are filled in when the event
  /// executes against the winner's then-current head.
  struct MineSlot {
    double at;
    std::uint32_t winner;  // miner index (into miner_nodes_)
  };
  static constexpr std::uint32_t kGenesis = 0xffffffffu;
  static constexpr std::uint32_t kMineEvent = 0xffffffffu;

  struct Ev {
    std::uint32_t dst;    // node index, or kMineEvent
    std::uint32_t block;  // arena index == mine slot index
  };
  /// Buffered cross-shard delivery, exchanged at the epoch barrier.
  struct Mail {
    double at;
    std::uint64_t key;
    Ev ev;
  };
  /// Per-shard worker state. Padded so two workers' hot counters never
  /// share a cache line.
  struct alignas(64) Shard {
    p2p::KeyedTimedQueue<Ev> queue;
    std::vector<std::vector<Mail>> outbox;  // one bucket per dest shard
    std::vector<double> arrivals;
    std::uint64_t deliveries = 0;
    std::uint64_t dup_suppressed = 0;
    std::uint64_t cut_dropped = 0;
    std::uint64_t events = 0;
    std::uint64_t mail_out = 0;
    std::uint64_t audit_checked = 0;
    std::uint64_t audit_violations = 0;
  };
  /// Barrier-published epoch control block (written by shard 0 between
  /// barriers, read by everyone after).
  struct EpochControl {
    double horizon = 0.0;
    bool done = false;
    std::uint64_t epochs = 0;
  };

  void exec_mine(Shard& shard, std::uint32_t slot, double now);
  void exec_deliver(Shard& shard, std::uint32_t dst, std::uint32_t block,
                    double now);
  void process_until(Shard& shard, double horizon);
  void merge_inbox(std::size_t s);
  void worker(std::size_t s, p2p::PhaseBarrier& barrier, EpochControl& ctl);
  double link_delay(std::uint32_t src, std::uint32_t dst);
  bool cut_severs(std::uint32_t a, std::uint32_t b, double now) const;
  double compute_lookahead() const;
  ScaleReport finalize();

  static std::uint64_t delivery_key(std::uint32_t block,
                                    std::uint32_t dst) noexcept {
    // top bit: deliveries order after the mine slot with the same index
    return (1ull << 63) | (static_cast<std::uint64_t>(block) << 32) | dst;
  }

  ScaleParams params_;
  Rng rng_;
  p2p::Topology topo_;
  std::optional<p2p::GeoModel> geo_;

  // flat node table (struct-of-arrays)
  std::vector<std::uint32_t> head_block_;   // kGenesis = still at genesis
  std::vector<std::uint32_t> head_height_;
  std::vector<std::uint8_t> cut_side_;      // 1 = severed group
  std::size_t cut_size_ = 0;

  // identity-attributed randomness: the pre-drawn race + per-node jitter
  // streams (stream i is touched only by node i's owning shard)
  std::vector<MineSlot> schedule_;
  std::vector<Rng> node_rng_;

  // block arena (pre-sized: slot i == mine event i) + node-major seen
  // bitset arena (node i's row: words [i*words_per_node_, ...))
  std::vector<BlockRec> blocks_;
  std::vector<std::uint64_t> seen_;
  std::size_t words_per_node_ = 0;

  std::vector<std::uint32_t> miner_nodes_;
  std::vector<std::uint64_t> miner_wins_;   // canonical wins, filled at end
  std::vector<std::uint64_t> miner_mined_;

  // shard partition
  std::vector<std::uint32_t> shard_of_;
  std::vector<Shard> shards_;
  double lookahead_ = 0.0;
  std::uint64_t epochs_ = 0;

  std::uint64_t deliveries_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t cut_dropped_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t cross_shard_messages_ = 0;
  std::uint64_t audit_checked_ = 0;
  std::uint64_t audit_violations_ = 0;
  std::vector<double> arrival_deltas_;
  p2p::TimedQueueProfile profile_;
  bool ran_ = false;
};

}  // namespace forksim::sim
