// Transaction workload generator for full-node simulations: a population of
// accounts (owned exclusively by the generator, so nonces are tracked
// locally) submits transfers and contract calls at a configurable rate
// through randomly-chosen entry nodes. Used by the gossip ablation and the
// measurement-pipeline example; reusable in any full-node scenario.
#pragma once

#include <optional>
#include <vector>

#include "sim/node.hpp"

namespace forksim::sim {

class TxGenerator {
 public:
  struct Options {
    /// Mean seconds between submissions (exponential inter-arrival).
    double mean_interval = 2.0;
    /// Fraction of transactions that call `contract_target` (0 disables).
    double contract_fraction = 0.0;
    std::optional<Address> contract_target;
    core::Wei transfer_value = core::ether(1);
    /// EIP-155 chain id for generated transactions (nullopt = legacy).
    std::optional<std::uint64_t> chain_id;
    core::Gas gas_limit = 90'000;
  };

  /// `nodes` are the injection points; `accounts` must be used by this
  /// generator only (their nonces are tracked locally).
  TxGenerator(std::vector<FullNode*> nodes, std::vector<PrivateKey> accounts,
              Rng rng, Options options);
  TxGenerator(std::vector<FullNode*> nodes, std::vector<PrivateKey> accounts,
              Rng rng);

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  std::uint64_t submitted() const noexcept { return submitted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }

  /// The most recently *generated* transactions, accepted by the pool or
  /// not (bounded ring, newest last) — lets callers rebroadcast them onto
  /// another chain (replay agents) or inspect rejected ones.
  const std::vector<core::Transaction>& recent() const noexcept {
    return recent_;
  }

 private:
  void schedule_next();
  void submit_one();

  std::vector<FullNode*> nodes_;
  std::vector<PrivateKey> accounts_;
  std::vector<std::uint64_t> nonces_;
  Rng rng_;
  Options options_;
  bool running_ = false;
  std::uint64_t generation_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::vector<core::Transaction> recent_;
  static constexpr std::size_t kRecentCap = 64;
};

}  // namespace forksim::sim
