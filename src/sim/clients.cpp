#include "sim/clients.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace forksim::sim {

const char* to_string(ClientFamily family) {
  switch (family) {
    case ClientFamily::kGeth: return "geth";
    case ClientFamily::kParity: return "parity";
    case ClientFamily::kBesu: return "besu";
    case ClientFamily::kNethermind: return "nethermind";
  }
  return "unknown";
}

ClientProfile profile_for(ClientFamily family) {
  // Mild, fixed per-family deltas: gossip fanout and maintenance cadence
  // differ between real clients, protocol semantics do not (the quirk is
  // the only semantic difference, and it is injected, not profiled).
  switch (family) {
    case ClientFamily::kGeth: return {family, 1.0, 1.0};
    case ClientFamily::kParity: return {family, 0.9, 1.2};
    case ClientFamily::kBesu: return {family, 1.1, 1.1};
    case ClientFamily::kNethermind: return {family, 1.0, 0.9};
  }
  return {family, 1.0, 1.0};
}

namespace {

void require_known_family(ClientFamily family, const char* field) {
  if (static_cast<std::size_t>(family) >= kClientFamilyCount)
    throw std::invalid_argument(
        std::string("ClientMixParams::") + field + " names unknown family " +
        std::to_string(static_cast<unsigned>(family)));
}

}  // namespace

void ClientMixParams::validate() const {
  if (!enabled) return;
  if (mix.empty())
    throw std::invalid_argument(
        "ClientMixParams::mix is empty: nothing to assign");
  double sum = 0.0;
  for (const ClientShare& share : mix) {
    require_known_family(share.family, "mix");
    if (!(share.fraction >= 0.0 && share.fraction <= 1.0))
      throw std::invalid_argument(
          "ClientMixParams::mix fraction for " + std::string(to_string(
              share.family)) + " must be in [0, 1], got " +
          std::to_string(share.fraction));
    sum += share.fraction;
  }
  if (std::abs(sum - 1.0) > 1e-9)
    throw std::invalid_argument(
        "ClientMixParams::mix fractions must sum to 1, got " +
        std::to_string(sum));
  require_known_family(buggy_family, "buggy_family");
  if (!(onset_time >= 0.0))
    throw std::invalid_argument("ClientMixParams::onset_time must be >= 0, got " +
                                std::to_string(onset_time));
  // patch_time < 0 is the documented "never patched" flag; a scheduled
  // patch must not precede the onset (an inverted bug window)
  if (patch_time >= 0.0 && patch_time < onset_time)
    throw std::invalid_argument(
        "ClientMixParams: patch_time (" + std::to_string(patch_time) +
        ") precedes onset_time (" + std::to_string(onset_time) + ")");
  if (trigger_modulus == 0)
    throw std::invalid_argument("ClientMixParams::trigger_modulus must be >= 1");
  if (trigger_residue >= trigger_modulus)
    throw std::invalid_argument(
        "ClientMixParams::trigger_residue (" + std::to_string(trigger_residue) +
        ") must be < trigger_modulus (" + std::to_string(trigger_modulus) +
        ")");
}

std::vector<ClientFamily> assign_client_families(const ClientMixParams& mix,
                                                 std::size_t n, Rng& rng) {
  std::vector<double> weights;
  weights.reserve(mix.mix.size());
  for (const ClientShare& share : mix.mix) weights.push_back(share.fraction);
  std::vector<ClientFamily> families;
  families.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    families.push_back(mix.mix[rng.weighted_index(weights)].family);
  return families;
}

QuirkRuleSet::QuirkRuleSet(ClientMixParams config, std::function<double()> now)
    : config_(std::move(config)), now_(std::move(now)) {}

bool QuirkRuleSet::would_dispute(const Hash256& hash,
                                 core::BlockNumber number) const {
  if (patched_) return false;
  if (number < config_.onset_height) return false;
  const double t = now_();
  if (t < config_.onset_time) return false;
  if (config_.patch_time >= 0.0 && t >= config_.patch_time) return false;
  // last 8 hash bytes, big-endian: uniform over blocks, identical on every
  // node (the bug is deterministic — all buggy clients refuse the same
  // blocks, which is what makes it a consensus split and not noise)
  std::uint64_t v = 0;
  for (std::size_t i = 24; i < 32; ++i)
    v = (v << 8) | hash.data()[i];
  return v % config_.trigger_modulus == config_.trigger_residue;
}

core::ImportResult QuirkRuleSet::review_header(
    const core::BlockHeader& header, const Hash256& hash,
    core::ImportResult builtin) const {
  // only otherwise-valid verdicts are flipped: a block the built-in rules
  // already condemned stays condemned for its real reason
  if (builtin != core::ImportResult::kImported) return builtin;
  if (!would_dispute(hash, header.number)) return builtin;
  ++disputes_;
  return core::ImportResult::kDisputed;
}

}  // namespace forksim::sim
