#include "trie/trie.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "crypto/keccak.hpp"
#include "obs/metrics.hpp"
#include "rlp/rlp.hpp"

namespace forksim::trie {

namespace {
TrieCounters g_counters;
}  // namespace

const TrieCounters& counters() noexcept { return g_counters; }

void reset_counters() noexcept { g_counters = TrieCounters{}; }

void attach_telemetry(obs::Registry& reg) {
  // Report deltas from the attach point: the globals span the whole
  // process, but a registry should only see its own run's work (two
  // same-seed runs in one process must snapshot identically).
  const TrieCounters base = g_counters;
  reg.add_collector([base](obs::Registry& r) {
    r.counter("trie.reads").set(g_counters.reads - base.reads);
    r.counter("trie.writes").set(g_counters.writes - base.writes);
    r.counter("trie.node_visits")
        .set(g_counters.node_visits - base.node_visits);
    r.counter("trie.hash_recomputations")
        .set(g_counters.hash_recomputations - base.hash_recomputations);
  });
}

namespace {
using Nibbles = std::vector<std::uint8_t>;

std::size_t common_prefix(const Nibbles& a, std::size_t a_off,
                          const Nibbles& b, std::size_t b_off) {
  std::size_t n = 0;
  while (a_off + n < a.size() && b_off + n < b.size() &&
         a[a_off + n] == b[b_off + n])
    ++n;
  return n;
}

Nibbles slice(const Nibbles& src, std::size_t from, std::size_t count) {
  return Nibbles(src.begin() + static_cast<std::ptrdiff_t>(from),
                 src.begin() + static_cast<std::ptrdiff_t>(from + count));
}
}  // namespace

std::vector<std::uint8_t> to_nibbles(BytesView key) {
  Nibbles out;
  out.reserve(key.size() * 2);
  for (std::uint8_t b : key) {
    out.push_back(b >> 4);
    out.push_back(b & 0x0f);
  }
  return out;
}

Bytes hex_prefix(const Nibbles& nibbles, bool is_leaf) {
  Bytes out;
  const std::uint8_t flag = is_leaf ? 2 : 0;
  if (nibbles.size() % 2 == 0) {
    out.push_back(static_cast<std::uint8_t>(flag << 4));
    for (std::size_t i = 0; i < nibbles.size(); i += 2)
      out.push_back(static_cast<std::uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
  } else {
    out.push_back(static_cast<std::uint8_t>(((flag | 1) << 4) | nibbles[0]));
    for (std::size_t i = 1; i < nibbles.size(); i += 2)
      out.push_back(static_cast<std::uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
  }
  return out;
}

std::optional<std::pair<Nibbles, bool>> decode_hex_prefix(BytesView encoded) {
  if (encoded.empty()) return std::nullopt;
  const std::uint8_t flags = encoded[0] >> 4;
  if (flags > 3) return std::nullopt;
  const bool is_leaf = (flags & 2) != 0;
  const bool odd = (flags & 1) != 0;
  Nibbles nibbles;
  if (odd) nibbles.push_back(encoded[0] & 0x0f);
  else if ((encoded[0] & 0x0f) != 0) return std::nullopt;
  for (std::size_t i = 1; i < encoded.size(); ++i) {
    nibbles.push_back(encoded[i] >> 4);
    nibbles.push_back(encoded[i] & 0x0f);
  }
  return std::make_pair(std::move(nibbles), is_leaf);
}

struct Trie::Node {
  enum class Kind { kLeaf, kExtension, kBranch };

  Kind kind;
  Nibbles path;                                    // leaf / extension
  Bytes value;                                     // leaf / branch value
  bool has_value = false;                          // branch only
  std::unique_ptr<Node> child;                     // extension only
  std::array<std::unique_ptr<Node>, 16> children;  // branch only

  // Memoized commitment state: the node's RLP encoding (empty = stale) and,
  // for nodes referenced by hash, the keccak of that encoding. Mutations
  // invalidate these along the touched path only; subtrees that did not
  // change keep their caches, which is what makes re-hashing incremental.
  mutable Bytes enc_cache;
  mutable Hash256 hash_cache;
  mutable bool hash_valid = false;

  void invalidate() noexcept {
    enc_cache.clear();
    hash_valid = false;
  }

  static std::unique_ptr<Node> leaf(Nibbles p, Bytes v) {
    auto n = std::make_unique<Node>();
    n->kind = Kind::kLeaf;
    n->path = std::move(p);
    n->value = std::move(v);
    return n;
  }
  static std::unique_ptr<Node> extension(Nibbles p, std::unique_ptr<Node> c) {
    auto n = std::make_unique<Node>();
    n->kind = Kind::kExtension;
    n->path = std::move(p);
    n->child = std::move(c);
    return n;
  }
  static std::unique_ptr<Node> branch() {
    auto n = std::make_unique<Node>();
    n->kind = Kind::kBranch;
    return n;
  }
};

Trie::Trie() = default;
Trie::~Trie() = default;
Trie::Trie(Trie&&) noexcept = default;
Trie& Trie::operator=(Trie&&) noexcept = default;

namespace {

using Node = Trie::Node;

}  // namespace

// ---------------------------------------------------------------------------
// Lookup

namespace {
const Node* find(const Node* node, const Nibbles& key, std::size_t depth) {
  while (node != nullptr) {
    ++g_counters.node_visits;
    switch (node->kind) {
      case Node::Kind::kLeaf: {
        if (key.size() - depth == node->path.size() &&
            std::equal(node->path.begin(), node->path.end(),
                       key.begin() + static_cast<std::ptrdiff_t>(depth)))
          return node;
        return nullptr;
      }
      case Node::Kind::kExtension: {
        if (key.size() - depth < node->path.size()) return nullptr;
        if (!std::equal(node->path.begin(), node->path.end(),
                        key.begin() + static_cast<std::ptrdiff_t>(depth)))
          return nullptr;
        depth += node->path.size();
        node = node->child.get();
        break;
      }
      case Node::Kind::kBranch: {
        if (depth == key.size()) return node->has_value ? node : nullptr;
        const std::uint8_t nib = key[depth];
        node = node->children[nib].get();
        ++depth;
        break;
      }
    }
  }
  return nullptr;
}
}  // namespace

std::optional<Bytes> Trie::get(BytesView key) const {
  ++g_counters.reads;
  const Nibbles nk = to_nibbles(key);
  const Node* n = find(root_.get(), nk, 0);
  if (n == nullptr) return std::nullopt;
  return n->value;
}

// ---------------------------------------------------------------------------
// Insert

namespace {
std::unique_ptr<Node> insert(std::unique_ptr<Node> node, const Nibbles& key,
                             std::size_t depth, Bytes value) {
  if (!node) return Node::leaf(slice(key, depth, key.size() - depth),
                               std::move(value));

  // every node on the insertion path changes its encoding; subtrees the key
  // does not descend into keep their memoized commitments
  node->invalidate();

  switch (node->kind) {
    case Node::Kind::kLeaf: {
      const std::size_t cp = common_prefix(key, depth, node->path, 0);
      const std::size_t rest_key = key.size() - depth - cp;
      const std::size_t rest_node = node->path.size() - cp;
      if (rest_key == 0 && rest_node == 0) {
        node->value = std::move(value);
        return node;
      }
      // split into a branch under a possible shared-prefix extension
      auto branch = Node::branch();
      if (rest_node == 0) {
        branch->has_value = true;
        branch->value = std::move(node->value);
      } else {
        const std::uint8_t nib = node->path[cp];
        branch->children[nib] =
            Node::leaf(slice(node->path, cp + 1, rest_node - 1),
                       std::move(node->value));
      }
      if (rest_key == 0) {
        branch->has_value = true;
        branch->value = std::move(value);
      } else {
        const std::uint8_t nib = key[depth + cp];
        branch->children[nib] =
            Node::leaf(slice(key, depth + cp + 1, rest_key - 1),
                       std::move(value));
      }
      if (cp == 0) return branch;
      return Node::extension(slice(node->path, 0, cp), std::move(branch));
    }

    case Node::Kind::kExtension: {
      const std::size_t cp = common_prefix(key, depth, node->path, 0);
      if (cp == node->path.size()) {
        node->child =
            insert(std::move(node->child), key, depth + cp, std::move(value));
        return node;
      }
      // key diverges inside the extension path
      auto branch = Node::branch();
      // remainder of the extension path (after cp and the branching nibble)
      {
        const std::uint8_t nib = node->path[cp];
        Nibbles tail = slice(node->path, cp + 1, node->path.size() - cp - 1);
        if (tail.empty())
          branch->children[nib] = std::move(node->child);
        else
          branch->children[nib] =
              Node::extension(std::move(tail), std::move(node->child));
      }
      if (depth + cp == key.size()) {
        branch->has_value = true;
        branch->value = std::move(value);
      } else {
        const std::uint8_t nib = key[depth + cp];
        branch->children[nib] =
            Node::leaf(slice(key, depth + cp + 1, key.size() - depth - cp - 1),
                       std::move(value));
      }
      if (cp == 0) return branch;
      return Node::extension(slice(node->path, 0, cp), std::move(branch));
    }

    case Node::Kind::kBranch: {
      if (depth == key.size()) {
        node->has_value = true;
        node->value = std::move(value);
        return node;
      }
      const std::uint8_t nib = key[depth];
      node->children[nib] = insert(std::move(node->children[nib]), key,
                                   depth + 1, std::move(value));
      return node;
    }
  }
  return node;  // unreachable
}
}  // namespace

void Trie::put(BytesView key, BytesView value) {
  if (value.empty()) {
    erase(key);
    return;
  }
  ++g_counters.writes;
  const Nibbles nk = to_nibbles(key);
  const bool existed = find(root_.get(), nk, 0) != nullptr;
  root_ = insert(std::move(root_), nk, 0, Bytes(value.begin(), value.end()));
  if (!existed) ++size_;
}

// ---------------------------------------------------------------------------
// Erase

namespace {

/// Re-normalize a branch that may have become degenerate (fewer than two
/// referents). Returns the replacement node.
std::unique_ptr<Node> collapse_branch(std::unique_ptr<Node> branch) {
  int child_count = 0;
  int only_index = -1;
  for (int i = 0; i < 16; ++i) {
    if (branch->children[static_cast<std::size_t>(i)]) {
      ++child_count;
      only_index = i;
    }
  }
  const int referents = child_count + (branch->has_value ? 1 : 0);
  if (referents >= 2) return branch;
  if (referents == 0) return nullptr;

  if (branch->has_value) {
    // value only: becomes a leaf with empty path
    return Node::leaf({}, std::move(branch->value));
  }

  // single child: merge the branching nibble into it
  auto child = std::move(branch->children[static_cast<std::size_t>(only_index)]);
  const auto nib = static_cast<std::uint8_t>(only_index);
  switch (child->kind) {
    case Node::Kind::kLeaf:
    case Node::Kind::kExtension: {
      Nibbles merged;
      merged.push_back(nib);
      merged.insert(merged.end(), child->path.begin(), child->path.end());
      child->path = std::move(merged);
      child->invalidate();  // path changed => encoding changed
      return child;
    }
    case Node::Kind::kBranch: {
      return Node::extension({nib}, std::move(child));
    }
  }
  return child;  // unreachable
}

/// Merge an extension with its child where possible.
std::unique_ptr<Node> collapse_extension(std::unique_ptr<Node> ext) {
  if (!ext->child) return nullptr;
  switch (ext->child->kind) {
    case Node::Kind::kLeaf:
    case Node::Kind::kExtension: {
      auto child = std::move(ext->child);
      Nibbles merged = std::move(ext->path);
      merged.insert(merged.end(), child->path.begin(), child->path.end());
      child->path = std::move(merged);
      child->invalidate();  // path changed => encoding changed
      return child;
    }
    case Node::Kind::kBranch:
      return ext;
  }
  return ext;  // unreachable
}

std::unique_ptr<Node> remove(std::unique_ptr<Node> node, const Nibbles& key,
                             std::size_t depth, bool& removed) {
  if (!node) return nullptr;
  switch (node->kind) {
    case Node::Kind::kLeaf: {
      if (key.size() - depth == node->path.size() &&
          std::equal(node->path.begin(), node->path.end(),
                     key.begin() + static_cast<std::ptrdiff_t>(depth))) {
        removed = true;
        return nullptr;
      }
      return node;
    }
    case Node::Kind::kExtension: {
      if (key.size() - depth < node->path.size() ||
          !std::equal(node->path.begin(), node->path.end(),
                      key.begin() + static_cast<std::ptrdiff_t>(depth)))
        return node;
      node->child = remove(std::move(node->child), key,
                           depth + node->path.size(), removed);
      if (!removed) return node;
      node->invalidate();
      return collapse_extension(std::move(node));
    }
    case Node::Kind::kBranch: {
      if (depth == key.size()) {
        if (!node->has_value) return node;
        node->has_value = false;
        node->value.clear();
        removed = true;
        node->invalidate();
        return collapse_branch(std::move(node));
      }
      const std::uint8_t nib = key[depth];
      if (!node->children[nib]) return node;
      node->children[nib] =
          remove(std::move(node->children[nib]), key, depth + 1, removed);
      if (!removed) return node;
      node->invalidate();
      return collapse_branch(std::move(node));
    }
  }
  return node;  // unreachable
}
}  // namespace

bool Trie::erase(BytesView key) {
  ++g_counters.writes;
  const Nibbles nk = to_nibbles(key);
  bool removed = false;
  root_ = remove(std::move(root_), nk, 0, removed);
  if (removed) --size_;
  return removed;
}

// ---------------------------------------------------------------------------
// Hashing

namespace {

rlp::Item encode_item(const Node& node);

/// The node's RLP encoding, memoized until the next mutation on its path.
const Bytes& node_encoding(const Node& node) {
  if (node.enc_cache.empty())
    node.enc_cache = rlp::encode(encode_item(node));
  return node.enc_cache;
}

/// Spec rule: a child node whose RLP encoding is shorter than 32 bytes is
/// embedded directly; otherwise it is referenced by its keccak hash. The
/// hash is memoized alongside the encoding, so an unchanged subtree costs
/// zero keccak permutations per root_hash().
rlp::Item node_ref(const Node* node) {
  if (node == nullptr) return rlp::Item::str(BytesView{});
  const Bytes& encoded = node_encoding(*node);
  if (encoded.size() < 32) return encode_item(*node);  // embedded, tiny
  if (!node->hash_valid) {
    ++g_counters.hash_recomputations;
    node->hash_cache = keccak256(encoded);
    node->hash_valid = true;
  }
  return rlp::Item::str(node->hash_cache.view());
}

rlp::Item encode_item(const Node& node) {
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      return rlp::Item::list({rlp::Item(hex_prefix(node.path, true)),
                              rlp::Item(node.value)});
    }
    case Node::Kind::kExtension: {
      return rlp::Item::list({rlp::Item(hex_prefix(node.path, false)),
                              node_ref(node.child.get())});
    }
    case Node::Kind::kBranch: {
      std::vector<rlp::Item> fields;
      fields.reserve(17);
      for (const auto& child : node.children)
        fields.push_back(node_ref(child.get()));
      fields.push_back(node.has_value ? rlp::Item(node.value)
                                      : rlp::Item::str(BytesView{}));
      return rlp::Item::list(std::move(fields));
    }
  }
  return rlp::Item();  // unreachable
}
}  // namespace

Hash256 empty_trie_root() {
  return keccak256(rlp::encode_bytes(BytesView{}));
}

Hash256 Trie::root_hash() const {
  if (!root_) return empty_trie_root();
  const Bytes& encoded = node_encoding(*root_);
  // the root is always referenced by hash, even when its encoding is short
  if (!root_->hash_valid) {
    ++g_counters.hash_recomputations;
    root_->hash_cache = keccak256(encoded);
    root_->hash_valid = true;
  }
  return root_->hash_cache;
}

// ---------------------------------------------------------------------------
// Proofs

std::vector<Bytes> Trie::prove(BytesView key) const {
  std::vector<Bytes> proof;
  const Nibbles nk = to_nibbles(key);
  const Node* node = root_.get();
  std::size_t depth = 0;
  bool at_hashed_boundary = true;  // root is always included
  while (node != nullptr) {
    const Bytes& encoded = node_encoding(*node);
    if (at_hashed_boundary) proof.push_back(encoded);
    at_hashed_boundary = encoded.size() >= 32;
    // embedded (short) nodes ride inside their parent's encoding; only
    // nodes referenced by hash appear as separate proof elements — but the
    // *next* hashed node must be appended, so track the boundary flag.
    switch (node->kind) {
      case Node::Kind::kLeaf:
        return proof;
      case Node::Kind::kExtension: {
        if (nk.size() - depth < node->path.size() ||
            !std::equal(node->path.begin(), node->path.end(),
                        nk.begin() + static_cast<std::ptrdiff_t>(depth)))
          return proof;
        depth += node->path.size();
        node = node->child.get();
        break;
      }
      case Node::Kind::kBranch: {
        if (depth == nk.size()) return proof;
        node = node->children[nk[depth]].get();
        ++depth;
        break;
      }
    }
  }
  return proof;
}

std::optional<Bytes> Trie::verify_proof(const Hash256& root, BytesView key,
                                        const std::vector<Bytes>& proof) {
  if (proof.empty()) return std::nullopt;

  // index proof elements by their hash
  std::vector<std::pair<Hash256, const Bytes*>> by_hash;
  by_hash.reserve(proof.size());
  for (const Bytes& p : proof) by_hash.emplace_back(keccak256(p), &p);

  auto lookup = [&](const Hash256& h) -> const Bytes* {
    for (const auto& [hash, ptr] : by_hash)
      if (hash == h) return ptr;
    return nullptr;
  };

  const Nibbles nk = to_nibbles(key);
  std::size_t depth = 0;

  const Bytes* root_bytes = lookup(root);
  if (root_bytes == nullptr) return std::nullopt;
  auto decoded = rlp::decode(*root_bytes);
  if (!decoded.ok()) return std::nullopt;
  rlp::Item current = std::move(*decoded.item);

  for (;;) {
    if (!current.is_list()) return std::nullopt;
    const auto& fields = current.items();

    if (fields.size() == 2) {  // leaf or extension
      if (!fields[0].is_bytes()) return std::nullopt;
      auto hp = decode_hex_prefix(fields[0].bytes());
      if (!hp) return std::nullopt;
      const auto& [path, is_leaf] = *hp;
      if (is_leaf) {
        if (nk.size() - depth != path.size() ||
            !std::equal(path.begin(), path.end(),
                        nk.begin() + static_cast<std::ptrdiff_t>(depth)))
          return std::nullopt;
        if (!fields[1].is_bytes()) return std::nullopt;
        return fields[1].bytes();
      }
      if (nk.size() - depth < path.size() ||
          !std::equal(path.begin(), path.end(),
                      nk.begin() + static_cast<std::ptrdiff_t>(depth)))
        return std::nullopt;
      depth += path.size();
      // resolve the child reference
      const rlp::Item& ref = fields[1];
      if (ref.is_list()) {
        rlp::Item embedded = ref;  // copy before overwriting `current`
        current = std::move(embedded);
        continue;
      }
      if (ref.bytes().size() != 32) return std::nullopt;
      const Bytes* next = lookup(Hash256::left_padded(ref.bytes()));
      if (next == nullptr) return std::nullopt;
      auto dec = rlp::decode(*next);
      if (!dec.ok()) return std::nullopt;
      current = std::move(*dec.item);
      continue;
    }

    if (fields.size() == 17) {  // branch
      if (depth == nk.size()) {
        if (!fields[16].is_bytes() || fields[16].bytes().empty())
          return std::nullopt;
        return fields[16].bytes();
      }
      const rlp::Item& ref = fields[nk[depth]];
      ++depth;
      if (ref.is_list()) {
        rlp::Item embedded = ref;  // copy before overwriting `current`
        current = std::move(embedded);
        continue;
      }
      if (ref.bytes().empty()) return std::nullopt;  // absent child
      if (ref.bytes().size() != 32) return std::nullopt;
      const Bytes* next = lookup(Hash256::left_padded(ref.bytes()));
      if (next == nullptr) return std::nullopt;
      auto dec = rlp::decode(*next);
      if (!dec.ok()) return std::nullopt;
      current = std::move(*dec.item);
      continue;
    }

    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Enumeration

namespace {
void walk(const Node* node, Nibbles& prefix,
          std::vector<std::pair<Bytes, Bytes>>& out) {
  if (node == nullptr) return;
  switch (node->kind) {
    case Node::Kind::kLeaf: {
      Nibbles full = prefix;
      full.insert(full.end(), node->path.begin(), node->path.end());
      Bytes key;
      for (std::size_t i = 0; i + 1 < full.size(); i += 2)
        key.push_back(static_cast<std::uint8_t>((full[i] << 4) | full[i + 1]));
      out.emplace_back(std::move(key), node->value);
      return;
    }
    case Node::Kind::kExtension: {
      const std::size_t n = node->path.size();
      prefix.insert(prefix.end(), node->path.begin(), node->path.end());
      walk(node->child.get(), prefix, out);
      prefix.resize(prefix.size() - n);
      return;
    }
    case Node::Kind::kBranch: {
      if (node->has_value) {
        Bytes key;
        for (std::size_t i = 0; i + 1 < prefix.size(); i += 2)
          key.push_back(
              static_cast<std::uint8_t>((prefix[i] << 4) | prefix[i + 1]));
        out.emplace_back(std::move(key), node->value);
      }
      for (std::uint8_t i = 0; i < 16; ++i) {
        if (!node->children[i]) continue;
        prefix.push_back(i);
        walk(node->children[i].get(), prefix, out);
        prefix.pop_back();
      }
      return;
    }
  }
}
}  // namespace

std::vector<std::pair<Bytes, Bytes>> Trie::entries() const {
  std::vector<std::pair<Bytes, Bytes>> out;
  Nibbles prefix;
  walk(root_.get(), prefix, out);
  std::sort(out.begin(), out.end());
  return out;
}

Hash256 ordered_trie_root(const std::vector<Bytes>& values) {
  Trie t;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const Bytes key = rlp::encode(rlp::Item::u64(i));
    t.put(key, values[i]);
  }
  return t.root_hash();
}

}  // namespace forksim::trie
