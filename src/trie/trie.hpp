// Merkle Patricia Trie — Ethereum's authenticated key/value structure, used
// for the state root, transaction root, and receipt root in block headers.
//
// Implements the full node model (leaf / extension / branch), hex-prefix
// path encoding, spec-compliant structural hashing (nodes whose RLP encoding
// is shorter than 32 bytes are embedded in their parent rather than hashed),
// insertion, lookup, deletion with path collapsing, and Merkle proofs.
//
// Every node memoizes its RLP encoding and keccak reference; mutations
// invalidate the caches only along the root-to-leaf path they touch, so a
// root_hash() after k updates re-hashes O(k · depth) nodes instead of the
// whole trie. This is what makes the incremental state-root commit in
// core::State cheap: patch the dirty account leaves, re-hash the spine.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "support/bytes.hpp"

namespace forksim::obs {
class Registry;
}

namespace forksim::trie {

/// Process-wide trie work tallies (the simulator is single-threaded).
/// Always on: plain unconditional increments, no branches, no Rng draws —
/// cheap enough to leave enabled and exact enough to fingerprint.
struct TrieCounters {
  std::uint64_t reads = 0;   // get() calls
  std::uint64_t writes = 0;  // put() / erase() calls
  std::uint64_t node_visits = 0;  // nodes walked during lookups
  std::uint64_t hash_recomputations = 0;  // keccak over node encodings
};

const TrieCounters& counters() noexcept;
void reset_counters() noexcept;

/// Register a snapshot-time collector on `reg` that mirrors counters()
/// into trie.* counters.
void attach_telemetry(obs::Registry& reg);

/// Nibble (4-bit) expansion of a key, most-significant nibble first.
std::vector<std::uint8_t> to_nibbles(BytesView key);

/// Hex-prefix encoding of a nibble path (Yellow Paper appendix C).
Bytes hex_prefix(const std::vector<std::uint8_t>& nibbles, bool is_leaf);

/// Inverse of hex_prefix; returns nibbles and leaf flag.
std::optional<std::pair<std::vector<std::uint8_t>, bool>> decode_hex_prefix(
    BytesView encoded);

class Trie {
 public:
  Trie();
  ~Trie();
  Trie(Trie&&) noexcept;
  Trie& operator=(Trie&&) noexcept;
  Trie(const Trie&) = delete;
  Trie& operator=(const Trie&) = delete;

  /// Insert or overwrite. Empty values are treated as deletion (Ethereum
  /// convention: a zero-length value cannot be stored).
  void put(BytesView key, BytesView value);

  std::optional<Bytes> get(BytesView key) const;

  /// Remove a key; returns true if it was present.
  bool erase(BytesView key);

  bool contains(BytesView key) const { return get(key).has_value(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Keccak-256 commitment to the whole trie. The empty trie hashes to
  /// keccak256(rlp("")) = 0x56e8...421 (the well-known empty root).
  /// Memoized: a second call with no intervening mutation re-hashes
  /// nothing, and after k mutations only the touched paths are re-encoded.
  Hash256 root_hash() const;

  /// Merkle proof: the RLP encodings of every node on the path from the root
  /// to `key` (inclusive). Empty when the trie is empty.
  std::vector<Bytes> prove(BytesView key) const;

  /// Verify a proof produced by prove() against a root hash. Returns the
  /// value if the proof shows `key` present; nullopt if the proof is invalid
  /// or shows absence.
  static std::optional<Bytes> verify_proof(const Hash256& root, BytesView key,
                                           const std::vector<Bytes>& proof);

  /// All key/value pairs in lexicographic key order (test/debug helper).
  std::vector<std::pair<Bytes, Bytes>> entries() const;

  struct Node;  // exposed for the implementation's free helpers only

 private:
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

/// Root hash of a list trie: keys are RLP(index), values as given — the
/// construction of Ethereum's transactionsRoot.
Hash256 ordered_trie_root(const std::vector<Bytes>& values);

/// The canonical empty-trie root constant.
Hash256 empty_trie_root();

}  // namespace forksim::trie
