#include "crypto/ecdsa.hpp"

#include "crypto/keccak.hpp"

namespace forksim {

namespace {
constexpr std::string_view kPubkeyDomain = "forksim/pubkey";

Hash256 make_tag(const Hash256& pubkey, const Hash256& digest) {
  Keccak256 h;
  h.update(pubkey.view());
  h.update(digest.view());
  return h.digest();
}
}  // namespace

PrivateKey PrivateKey::from_seed(std::uint64_t seed) {
  Keccak256 h;
  h.update(std::string_view("forksim/privkey"));
  auto be = be_fixed64(seed);
  h.update(BytesView(be.data(), be.size()));
  return PrivateKey{h.digest()};
}

PublicKey derive_public(const PrivateKey& priv) {
  Keccak256 h;
  h.update(priv.secret.view());
  h.update(kPubkeyDomain);
  return PublicKey{h.digest()};
}

Address PublicKey::address() const {
  const Hash256 digest = keccak256(value.view());
  return Address::left_padded(BytesView(digest.data() + 12, 20));
}

Address derive_address(const PrivateKey& priv) {
  return derive_public(priv).address();
}

Bytes Signature::encode() const {
  return concat({pubkey.view(), tag.view()});
}

std::optional<Signature> Signature::decode(BytesView b) {
  if (b.size() != 64) return std::nullopt;
  Signature sig;
  sig.pubkey = Hash256::left_padded(b.subspan(0, 32));
  sig.tag = Hash256::left_padded(b.subspan(32, 32));
  return sig;
}

Signature sign(const PrivateKey& priv, const Hash256& digest) {
  const PublicKey pub = derive_public(priv);
  return Signature{pub.value, make_tag(pub.value, digest)};
}

std::optional<Address> recover(const Hash256& digest, const Signature& sig) {
  if (make_tag(sig.pubkey, digest) != sig.tag) return std::nullopt;
  return PublicKey{sig.pubkey}.address();
}

bool verify(const Hash256& digest, const Signature& sig,
            const Address& signer) {
  const auto recovered = recover(digest, sig);
  return recovered.has_value() && *recovered == signer;
}

}  // namespace forksim
