#include "crypto/keccak.hpp"

#include <cstring>

namespace forksim {

namespace {

constexpr std::size_t kRate = 136;  // 1088-bit rate for Keccak-256

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull};

constexpr int kRotations[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                                25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

constexpr std::uint64_t rotl64(std::uint64_t x, int s) noexcept {
  return s == 0 ? x : (x << s) | (x >> (64 - s));
}

void keccak_f1600(std::uint64_t state[25]) noexcept {
  for (int round = 0; round < 24; ++round) {
    // theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x)
      c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^
             state[x + 20];
    std::uint64_t d[5];
    for (int x = 0; x < 5; ++x)
      d[x] = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y) state[x + 5 * y] ^= d[x];

    // rho + pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        const int from = x + 5 * y;
        const int to = y + 5 * ((2 * x + 3 * y) % 5);
        b[to] = rotl64(state[from], kRotations[from]);
      }
    }

    // chi
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        state[x + 5 * y] =
            b[x + 5 * y] ^ ((~b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
      }
    }

    // iota
    state[0] ^= kRoundConstants[round];
  }
}

}  // namespace

Keccak256::Keccak256() noexcept { reset(); }

void Keccak256::reset() noexcept {
  std::memset(state_, 0, sizeof(state_));
  std::memset(buffer_, 0, sizeof(buffer_));
  buffered_ = 0;
  finalized_ = false;
}

void Keccak256::absorb_block() noexcept {
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane = 0;
    // little-endian lane loading
    for (std::size_t j = 0; j < 8; ++j)
      lane |= static_cast<std::uint64_t>(buffer_[i * 8 + j]) << (8 * j);
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
  buffered_ = 0;
}

void Keccak256::update(BytesView data) noexcept {
  for (std::uint8_t byte : data) {
    buffer_[buffered_++] = byte;
    if (buffered_ == kRate) absorb_block();
  }
}

void Keccak256::update(std::string_view data) noexcept {
  update(BytesView(reinterpret_cast<const std::uint8_t*>(data.data()),
                   data.size()));
}

Hash256 Keccak256::digest() noexcept {
  if (!finalized_) {
    // original Keccak pad10*1 with domain byte 0x01
    std::memset(buffer_ + buffered_, 0, kRate - buffered_);
    buffer_[buffered_] = 0x01;
    buffer_[kRate - 1] |= 0x80;
    buffered_ = kRate;
    absorb_block();
    finalized_ = true;
  }
  Hash256 out;
  for (std::size_t i = 0; i < 32; ++i)
    out[i] = static_cast<std::uint8_t>((state_[i / 8] >> (8 * (i % 8))) & 0xff);
  return out;
}

Hash256 keccak256(BytesView data) {
  Keccak256 h;
  h.update(data);
  return h.digest();
}

Hash256 keccak256(std::string_view data) {
  Keccak256 h;
  h.update(data);
  return h.digest();
}

}  // namespace forksim
