// Keccak-256 as used by Ethereum (original Keccak padding 0x01, rate 1088
// bits) — implemented from scratch; this is the hash behind block hashes,
// transaction ids, addresses, and trie node references.
#pragma once

#include "support/bytes.hpp"

namespace forksim {

/// One-shot Keccak-256.
Hash256 keccak256(BytesView data);

/// Convenience overload for string payloads.
Hash256 keccak256(std::string_view data);

/// Incremental hasher for streaming input.
class Keccak256 {
 public:
  Keccak256() noexcept;

  void update(BytesView data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalize and return the digest. The hasher must not be reused after
  /// calling digest() without reset().
  Hash256 digest() noexcept;

  void reset() noexcept;

 private:
  void absorb_block() noexcept;

  std::uint64_t state_[25];
  std::uint8_t buffer_[136];
  std::size_t buffered_;
  bool finalized_;
};

}  // namespace forksim
