// Simulation signature scheme (SUBSTITUTION — see DESIGN.md §1).
//
// The paper's replay ("echo") analysis needs exactly two properties of
// Ethereum's secp256k1 signatures:
//   1. the sender address is recoverable from (signing-hash, signature), and
//   2. a signature is only valid for the exact signing-hash it was produced
//      for — so EIP-155's chain-id-in-the-signing-hash provides domain
//      separation between chains.
// We preserve both with a Keccak-based construction:
//   pubkey  = keccak256(priv || "forksim/pubkey")
//   address = last 20 bytes of keccak256(pubkey)
//   sig     = { pubkey, tag = keccak256(pubkey || digest) }
// recover() re-derives tag from the embedded pubkey and the digest; any
// mutation of the digest (e.g. a different chain id) invalidates the tag.
//
// This is NOT cryptographically unforgeable (pubkey is public), which is
// irrelevant here: no simulated agent attempts signature forgery, and the
// measured phenomena (cross-chain replay validity pre-EIP-155, its
// elimination post-EIP-155) depend only on properties 1 and 2, which hold
// exactly.
#pragma once

#include <optional>

#include "support/bytes.hpp"

namespace forksim {

struct PrivateKey {
  Hash256 secret;

  /// Deterministic key derivation from a seed (test/simulation helper).
  static PrivateKey from_seed(std::uint64_t seed);
};

struct PublicKey {
  Hash256 value;

  Address address() const;
};

PublicKey derive_public(const PrivateKey& priv);
Address derive_address(const PrivateKey& priv);

struct Signature {
  Hash256 pubkey;
  Hash256 tag;

  friend bool operator==(const Signature&, const Signature&) = default;

  /// 64-byte wire encoding (pubkey || tag).
  Bytes encode() const;
  static std::optional<Signature> decode(BytesView b);
};

/// Sign a 32-byte digest.
Signature sign(const PrivateKey& priv, const Hash256& digest);

/// Recover the signer's address; nullopt if the signature does not match the
/// digest.
std::optional<Address> recover(const Hash256& digest, const Signature& sig);

/// Convenience validity check.
bool verify(const Hash256& digest, const Signature& sig, const Address& signer);

}  // namespace forksim
