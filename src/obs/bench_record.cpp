#include "obs/bench_record.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace forksim::obs {

namespace {

std::string render_number(double v) {
  std::ostringstream os;
  json_number(os, v);
  return os.str();
}

std::string render_string(std::string_view v) {
  std::ostringstream os;
  json_string(os, v);
  return os.str();
}

}  // namespace

void BenchRecord::metric(std::string_view key, double value) {
  metrics_.push_back({std::string(key), render_number(value)});
}

void BenchRecord::metric(std::string_view key, std::uint64_t value) {
  metrics_.push_back({std::string(key), std::to_string(value)});
}

void BenchRecord::param(std::string_view key, double value) {
  params_.push_back({std::string(key), render_number(value)});
}

void BenchRecord::param(std::string_view key, std::uint64_t value) {
  params_.push_back({std::string(key), std::to_string(value)});
}

void BenchRecord::param(std::string_view key, std::string_view value) {
  params_.push_back({std::string(key), render_string(value)});
}

void BenchRecord::param(std::string_view key, bool value) {
  params_.push_back({std::string(key), value ? "true" : "false"});
}

std::string BenchRecord::to_json() const {
  std::ostringstream os;
  os << "{\"name\":";
  json_string(os, name_);
  os << ",\"schema\":\"forksim/bench/v1\",";
  auto emit = [&](const char* section, const std::vector<Field>& fields) {
    os << '"' << section << "\":{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) os << ',';
      json_string(os, fields[i].key);
      os << ':' << fields[i].json;
    }
    os << '}';
  };
  emit("params", params_);
  os << ',';
  emit("metrics", metrics_);
  os << ",\"telemetry\":" << telemetry_.to_json();
  os << "}\n";
  return os.str();
}

std::string BenchRecord::write() const {
  std::string path;
  if (const char* dir = std::getenv("FORKSIM_BENCH_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = dir;
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) return "";
  out << to_json();
  return out ? path : "";
}

}  // namespace forksim::obs
