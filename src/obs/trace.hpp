// Typed event tracing keyed on deterministic simulation time.
//
// The tracer records instant and complete (duration) events stamped with
// the sim clock it was given — usually p2p::EventLoop::now — so the stream
// is reproducible from a seed. Wall-clock capture is opt-in and is never
// part of a fingerprint: two runs of the same seed fingerprint identically
// no matter how fast the host executed them.
//
// Exports:
//  * Chrome trace-event JSON (loads in about:tracing / Perfetto): events
//    are sorted by sim timestamp, microsecond units.
//  * A compact CSV (ts,dur,lane,cat,name,args) for ad-hoc analysis.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/bytes.hpp"

namespace forksim::obs {

struct TraceEvent {
  double ts = 0.0;   // sim seconds
  double dur = -1.0; // sim seconds; < 0 => instant event
  /// Display lane (Chrome "tid"); instrumented layers use the node index.
  std::uint32_t lane = 0;
  std::string cat;
  std::string name;
  std::vector<std::pair<std::string, std::int64_t>> args;
  /// Optional wall-clock duration in microseconds (< 0 = not captured).
  /// Deliberately excluded from fingerprint().
  double wall_us = -1.0;
};

class EventTracer {
 public:
  using Clock = std::function<double()>;
  using Arg = std::pair<std::string_view, std::int64_t>;

  /// `clock` supplies sim time; `capacity` bounds memory — events past it
  /// are counted in dropped() instead of recorded.
  explicit EventTracer(Clock clock, std::size_t capacity = 1 << 20)
      : clock_(std::move(clock)), capacity_(capacity) {}

  double now() const { return clock_ ? clock_() : 0.0; }

  /// Capture wall-clock durations for spans (off by default; never
  /// fingerprinted).
  void set_wall_time_enabled(bool on) noexcept { wall_time_ = on; }
  bool wall_time_enabled() const noexcept { return wall_time_; }

  void instant(std::string_view cat, std::string_view name,
               std::uint32_t lane = 0, std::initializer_list<Arg> args = {});

  void complete(double start, double dur, std::string_view cat,
                std::string_view name, std::uint32_t lane = 0,
                std::initializer_list<Arg> args = {},
                double wall_us = -1.0);

  /// RAII scoped timer on sim time; records a complete event at scope exit
  /// (plus wall time when enabled on the tracer).
  class Span {
   public:
    Span(EventTracer* tracer, std::string_view cat, std::string_view name,
         std::uint32_t lane = 0);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;

    void add_arg(std::string_view key, std::int64_t value);

   private:
    EventTracer* tracer_;  // null after move / for a detached span
    double start_ = 0.0;
    std::chrono::steady_clock::time_point wall_start_;
    bool wall_ = false;
    std::string cat_;
    std::string name_;
    std::uint32_t lane_;
    std::vector<std::pair<std::string, std::int64_t>> args_;
  };

  Span span(std::string_view cat, std::string_view name,
            std::uint32_t lane = 0) {
    return Span(this, cat, name, lane);
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Digest of the first min(size, max_events) events in record order —
  /// sim timestamps, durations, lanes, names, args; wall time excluded.
  Hash256 fingerprint(std::size_t max_events = static_cast<std::size_t>(-1))
      const;

  /// Chrome trace-event JSON array, sorted by sim timestamp (monotone ts),
  /// microseconds. Loads directly in about:tracing / Perfetto.
  void write_chrome_json(std::ostream& os) const;
  /// ts,dur,lane,cat,name,"k=v k=v" — one line per event.
  void write_csv(std::ostream& os) const;
  /// write_chrome_json to `path`; false on I/O failure.
  bool write_chrome_json_file(const std::string& path) const;

 private:
  void record(TraceEvent ev);

  Clock clock_;
  std::size_t capacity_;
  bool wall_time_ = false;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace forksim::obs
