#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>

#include "crypto/keccak.hpp"
#include "obs/json.hpp"

namespace forksim::obs {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
}

bool Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  return merge_parts(other.counts_, other.count_, other.sum_, other.min_,
                     other.max_);
}

bool Histogram::merge_parts(const std::vector<std::uint64_t>& counts,
                            std::uint64_t count, double sum, double min,
                            double max) {
  if (counts.size() != counts_.size()) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += counts[i];
  if (count > 0) {
    min_ = count_ ? std::min(min_, min) : min;
    max_ = count_ ? std::max(max_, max) : max;
  }
  count_ += count;
  sum_ += sum;
  return true;
}

Histogram::QuantileBounds Histogram::quantile_bounds(double p) const {
  if (count_ == 0) return {};
  if (std::isnan(p)) p = 50.0;
  p = std::clamp(p, 0.0, 100.0);

  // The linear-interpolated percentile lies between the order statistics
  // at rank floor(r) and ceil(r), r = p/100 * (n-1). Cover both ranks'
  // buckets, then tighten with the exactly-tracked min/max.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  const auto k_lo = static_cast<std::uint64_t>(rank);
  const std::uint64_t k_hi =
      std::min<std::uint64_t>(k_lo + 1, count_ - 1);

  // bucket index holding the k-th (0-based) order statistic
  auto bucket_of = [&](std::uint64_t k) {
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      cumulative += counts_[b];
      if (cumulative > k) return b;
    }
    return counts_.size() - 1;  // unreachable when k < count_
  };

  const std::size_t b_lo = bucket_of(k_lo);
  const std::size_t b_hi = bucket_of(k_hi);
  // bucket b spans (bounds_[b-1], bounds_[b]]; the overflow bucket spans
  // (bounds_.back(), +inf) — min_/max_ close both open ends exactly
  const double lower = b_lo == 0 ? min_ : std::max(bounds_[b_lo - 1], min_);
  const double upper =
      b_hi == bounds_.size() ? max_ : std::min(bounds_[b_hi], max_);
  return {std::min(lower, upper), std::max(lower, upper)};
}

double Histogram::quantile(double p) const {
  const QuantileBounds qb = quantile_bounds(p);
  return (qb.lower + qb.upper) / 2.0;
}

std::vector<double> Histogram::exponential_bounds(double first, double factor,
                                                  std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  double b = first;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

std::vector<double> Histogram::linear_bounds(double first, double width,
                                             std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(first + width * static_cast<double>(i));
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot

namespace {

void hash_u64(Keccak256& h, std::uint64_t v) {
  const auto be = be_fixed64(v);
  h.update(BytesView(be.data(), be.size()));
}

/// Doubles are hashed by bit pattern: no formatting, no rounding — a
/// fingerprint differs iff some value differs in even the last ulp.
void hash_double(Keccak256& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  hash_u64(h, bits);
}

void hash_str(Keccak256& h, const std::string& s) {
  hash_u64(h, s.size());
  h.update(std::string_view(s));
}

}  // namespace

Hash256 Snapshot::fingerprint() const {
  Keccak256 h;
  h.update(std::string_view("forksim/obs-snapshot/v1"));
  hash_u64(h, counters.size());
  for (const auto& [name, value] : counters) {
    hash_str(h, name);
    hash_u64(h, value);
  }
  hash_u64(h, gauges.size());
  for (const auto& [name, value] : gauges) {
    hash_str(h, name);
    hash_double(h, value);
  }
  hash_u64(h, histograms.size());
  for (const HistogramData& hd : histograms) {
    hash_str(h, hd.name);
    hash_u64(h, hd.count);
    hash_double(h, hd.sum);
    hash_double(h, hd.min);
    hash_double(h, hd.max);
    hash_u64(h, hd.bounds.size());
    for (const double b : hd.bounds) hash_double(h, b);
    for (const std::uint64_t c : hd.counts) hash_u64(h, c);
  }
  return h.digest();
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ',';
    json_string(os, counters[i].first);
    os << ':' << counters[i].second;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ',';
    json_string(os, gauges[i].first);
    os << ':';
    json_number(os, gauges[i].second);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& hd = histograms[i];
    if (i > 0) os << ',';
    json_string(os, hd.name);
    os << ":{\"count\":" << hd.count << ",\"sum\":";
    json_number(os, hd.sum);
    os << ",\"min\":";
    json_number(os, hd.min);
    os << ",\"max\":";
    json_number(os, hd.max);
    os << ",\"bounds\":[";
    for (std::size_t b = 0; b < hd.bounds.size(); ++b) {
      if (b > 0) os << ',';
      json_number(os, hd.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < hd.counts.size(); ++b) {
      if (b > 0) os << ',';
      os << hd.counts[b];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::uint64_t Snapshot::counter_value(const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

// ---------------------------------------------------------------------------
// Registry

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double Registry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counter(name).inc(value);
  for (const auto& [name, value] : other.gauges) gauge(name).add(value);
  for (const Snapshot::HistogramData& hd : other.histograms) {
    Histogram& mine = histogram(hd.name, hd.bounds);
    if (mine.bounds() != hd.bounds) continue;  // pre-existing, incompatible
    mine.merge_parts(hd.counts, hd.count, hd.sum, hd.min, hd.max);
  }
}

Snapshot Registry::snapshot() {
  for (const auto& fn : collectors_) fn(*this);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c.value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g.value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramData hd;
    hd.name = name;
    hd.bounds = h.bounds();
    hd.counts = h.bucket_counts();
    hd.count = h.count();
    hd.sum = h.sum();
    hd.min = h.min();
    hd.max = h.max();
    snap.histograms.push_back(std::move(hd));
  }
  return snap;
}

}  // namespace forksim::obs
