#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <numeric>
#include <ostream>

#include "crypto/keccak.hpp"
#include "obs/json.hpp"

namespace forksim::obs {

namespace {

void hash_u64(Keccak256& h, std::uint64_t v) {
  const auto be = be_fixed64(v);
  h.update(BytesView(be.data(), be.size()));
}

void hash_double(Keccak256& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  hash_u64(h, bits);
}

void hash_str(Keccak256& h, const std::string& s) {
  hash_u64(h, s.size());
  h.update(std::string_view(s));
}

}  // namespace

void EventTracer::record(TraceEvent ev) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void EventTracer::instant(std::string_view cat, std::string_view name,
                          std::uint32_t lane,
                          std::initializer_list<Arg> args) {
  TraceEvent ev;
  ev.ts = now();
  ev.lane = lane;
  ev.cat = std::string(cat);
  ev.name = std::string(name);
  for (const Arg& a : args) ev.args.emplace_back(std::string(a.first), a.second);
  record(std::move(ev));
}

void EventTracer::complete(double start, double dur, std::string_view cat,
                           std::string_view name, std::uint32_t lane,
                           std::initializer_list<Arg> args, double wall_us) {
  TraceEvent ev;
  ev.ts = start;
  ev.dur = dur < 0 ? 0 : dur;
  ev.lane = lane;
  ev.cat = std::string(cat);
  ev.name = std::string(name);
  for (const Arg& a : args) ev.args.emplace_back(std::string(a.first), a.second);
  ev.wall_us = wall_us;
  record(std::move(ev));
}

void EventTracer::clear() {
  events_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// Span

EventTracer::Span::Span(EventTracer* tracer, std::string_view cat,
                        std::string_view name, std::uint32_t lane)
    : tracer_(tracer), cat_(cat), name_(name), lane_(lane) {
  if (tracer_ == nullptr) return;
  start_ = tracer_->now();
  wall_ = tracer_->wall_time_enabled();
  if (wall_) wall_start_ = std::chrono::steady_clock::now();
}

EventTracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      start_(other.start_),
      wall_start_(other.wall_start_),
      wall_(other.wall_),
      cat_(std::move(other.cat_)),
      name_(std::move(other.name_)),
      lane_(other.lane_),
      args_(std::move(other.args_)) {
  other.tracer_ = nullptr;
}

void EventTracer::Span::add_arg(std::string_view key, std::int64_t value) {
  args_.emplace_back(std::string(key), value);
}

EventTracer::Span::~Span() {
  if (tracer_ == nullptr) return;
  TraceEvent ev;
  ev.ts = start_;
  ev.dur = std::max(0.0, tracer_->now() - start_);
  ev.lane = lane_;
  ev.cat = std::move(cat_);
  ev.name = std::move(name_);
  ev.args = std::move(args_);
  if (wall_) {
    const auto delta = std::chrono::steady_clock::now() - wall_start_;
    ev.wall_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            delta)
            .count();
  }
  tracer_->record(std::move(ev));
}

// ---------------------------------------------------------------------------
// Fingerprint + exports

Hash256 EventTracer::fingerprint(std::size_t max_events) const {
  const std::size_t n = std::min(max_events, events_.size());
  Keccak256 h;
  h.update(std::string_view("forksim/obs-trace/v1"));
  hash_u64(h, n);
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = events_[i];
    hash_double(h, ev.ts);
    hash_double(h, ev.dur);
    hash_u64(h, ev.lane);
    hash_str(h, ev.cat);
    hash_str(h, ev.name);
    hash_u64(h, ev.args.size());
    for (const auto& [key, value] : ev.args) {
      hash_str(h, key);
      hash_u64(h, static_cast<std::uint64_t>(value));
    }
    // ev.wall_us deliberately not hashed: wall time varies run to run
  }
  return h.digest();
}

namespace {

void write_event_json(std::ostream& os, const TraceEvent& ev) {
  os << "{\"name\":";
  json_string(os, ev.name);
  os << ",\"cat\":";
  json_string(os, ev.cat);
  if (ev.dur < 0) {
    os << ",\"ph\":\"i\",\"s\":\"t\"";
  } else {
    os << ",\"ph\":\"X\",\"dur\":";
    json_number(os, ev.dur * 1e6);
  }
  os << ",\"ts\":";
  json_number(os, ev.ts * 1e6);
  os << ",\"pid\":0,\"tid\":" << ev.lane;
  if (!ev.args.empty() || ev.wall_us >= 0) {
    os << ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : ev.args) {
      if (!first) os << ',';
      first = false;
      json_string(os, key);
      os << ':' << value;
    }
    if (ev.wall_us >= 0) {
      if (!first) os << ',';
      os << "\"wall_us\":";
      json_number(os, ev.wall_us);
    }
    os << '}';
  }
  os << '}';
}

/// Indices sorted by sim timestamp (stable: record order breaks ties), so
/// exported timestamps are monotone even when spans finished out of order.
std::vector<std::size_t> ts_order(const std::vector<TraceEvent>& events) {
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events[a].ts < events[b].ts;
                   });
  return order;
}

}  // namespace

void EventTracer::write_chrome_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const std::size_t i : ts_order(events_)) {
    if (!first) os << ",\n";
    first = false;
    write_event_json(os, events_[i]);
  }
  os << "]\n";
}

void EventTracer::write_csv(std::ostream& os) const {
  os << "ts,dur,lane,cat,name,args\n";
  for (const std::size_t i : ts_order(events_)) {
    const TraceEvent& ev = events_[i];
    os << ev.ts << ',' << (ev.dur < 0 ? 0.0 : ev.dur) << ',' << ev.lane << ','
       << ev.cat << ',' << ev.name << ",\"";
    for (std::size_t a = 0; a < ev.args.size(); ++a) {
      if (a > 0) os << ' ';
      os << ev.args[a].first << '=' << ev.args[a].second;
    }
    os << "\"\n";
  }
}

bool EventTracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(out);
  return static_cast<bool>(out);
}

}  // namespace forksim::obs
