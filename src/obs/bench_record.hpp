// BENCH_<name>.json emission: every bench binary builds one BenchRecord,
// fills in throughput numbers and a telemetry snapshot, and writes it to
// $FORKSIM_BENCH_DIR (or the working directory). The format is flat on
// purpose — {"name":..., "metrics":{...}, "params":{...}, "telemetry":{...}}
// — so CI can diff runs with nothing fancier than jq.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace forksim::obs {

/// Wall-clock stopwatch for bench throughput numbers (sim results stay
/// deterministic; only the reported *rates* depend on the host).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

class BenchRecord {
 public:
  explicit BenchRecord(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Measured results (throughput, wall seconds, sim-blocks/sec, ...).
  void metric(std::string_view key, double value);
  void metric(std::string_view key, std::uint64_t value);
  /// Run configuration (seeds, node counts, durations, pass/fail flags).
  void param(std::string_view key, double value);
  void param(std::string_view key, std::uint64_t value);
  void param(std::string_view key, std::string_view value);
  void param(std::string_view key, bool value);

  /// Attach the run's telemetry snapshot (emitted under "telemetry").
  void telemetry(Snapshot snap) { telemetry_ = std::move(snap); }

  std::string to_json() const;

  /// Writes BENCH_<name>.json into $FORKSIM_BENCH_DIR if set, else the
  /// current directory. Returns the path written, or "" on failure.
  std::string write() const;

 private:
  struct Field {
    std::string key;
    std::string json;  // pre-rendered value
  };

  std::string name_;
  std::vector<Field> metrics_;
  std::vector<Field> params_;
  Snapshot telemetry_;
};

}  // namespace forksim::obs
