// Deterministic telemetry registry: named counters, gauges, and
// fixed-bucket histograms, snapshotted into a canonical form with a keccak
// fingerprint so two same-seed simulation runs can be compared bit for bit.
//
// Design rules:
//  * Everything is keyed on names in ordered maps — iteration order (and
//    therefore snapshots, JSON, and fingerprints) never depends on pointer
//    values or hashing.
//  * Instrumented code holds raw `Counter*` / `Gauge*` / `Histogram*`
//    handles that are null until a registry is attached; the inc()/set()/
//    observe() free helpers below make the unattached path a single
//    predictable branch and zero allocations, and no instrumentation ever
//    consumes an Rng draw — attaching telemetry cannot perturb a seeded run.
//  * Histograms have fixed bucket upper bounds plus an implicit overflow
//    bucket, merge by bucket-wise addition, and expose *exact* quantile
//    semantics: quantile_bounds(p) returns an interval guaranteed to
//    contain the true (linear-interpolated) percentile of the observed
//    samples, pinned against support/stats::percentile by the tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace forksim::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  /// Absolute overwrite — used by collectors that mirror externally-held
  /// counts (e.g. the trie's process-wide counters) into a registry.
  void set(std::uint64_t v) noexcept { value_ = v; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending; samples land in the first
  /// bucket whose upper bound is >= x, or the implicit overflow bucket.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

  /// Bucket-wise addition. Returns false (and leaves *this untouched) when
  /// the bucket layouts differ.
  bool merge(const Histogram& other);

  /// merge() from a histogram's disassembled pieces (snapshot data).
  bool merge_parts(const std::vector<std::uint64_t>& counts,
                   std::uint64_t count, double sum, double min, double max);

  /// An interval guaranteed to contain the exact linear-interpolated
  /// percentile (p in [0,100]) of every observed sample: the true value
  /// lies in [lower, upper] always. Tightened with the tracked min/max.
  struct QuantileBounds {
    double lower = 0.0;
    double upper = 0.0;
  };
  QuantileBounds quantile_bounds(double p) const;

  /// Point estimate: midpoint of quantile_bounds(p).
  double quantile(double p) const;

  /// `count` bounds: first, first*factor, first*factor^2, ...
  static std::vector<double> exponential_bounds(double first, double factor,
                                                std::size_t count);
  /// `count` bounds: first, first+width, first+2*width, ...
  static std::vector<double> linear_bounds(double first, double width,
                                           std::size_t count);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Canonical, order-stable copy of a registry's state. The fingerprint
/// hashes every name and the exact bit patterns of every value, so it is
/// equal across two runs iff the runs produced identical telemetry.
struct Snapshot {
  struct HistogramData {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramData> histograms;

  Hash256 fingerprint() const;
  std::string to_json() const;

  /// Value of a named counter in the snapshot (0 if absent).
  std::uint64_t counter_value(const std::string& name) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;  // handles point into the maps
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime
  /// (node-based maps), which is what makes raw-pointer handles safe.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Find-or-create; an existing histogram keeps its original bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// 0 / 0.0 / nullptr when the metric was never created.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Collectors run at snapshot time to mirror externally-held counts into
  /// the registry (e.g. trie::counters(), per-opcode EVM tallies).
  void add_collector(std::function<void(Registry&)> fn) {
    collectors_.push_back(std::move(fn));
  }

  /// Sum counters / add gauges / bucket-wise-merge histograms from
  /// `other`'s snapshot into this registry (metric names are created as
  /// needed; histograms with mismatched bounds are skipped).
  void merge(const Snapshot& other);

  /// Runs collectors, then captures everything in name order.
  Snapshot snapshot();
  Hash256 fingerprint() { return snapshot().fingerprint(); }

  std::size_t metric_count() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<std::function<void(Registry&)>> collectors_;
};

// Unattached-safe helpers: instrumented hot paths call these with possibly
// null handles; the cost without a registry is one predictable branch.
inline void inc(Counter* c, std::uint64_t n = 1) noexcept {
  if (c != nullptr) c->inc(n);
}
inline void observe(Histogram* h, double x) noexcept {
  if (h != nullptr) h->observe(x);
}
inline void set(Gauge* g, double v) noexcept {
  if (g != nullptr) g->set(v);
}

}  // namespace forksim::obs
