// Minimal JSON emission helpers shared by the obs exporters. Emission
// only — the simulator never parses JSON; tests carry their own validator.
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace forksim::obs {

inline void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Shortest round-trippable decimal; non-finite values become null (JSON
/// has no NaN/Infinity).
inline void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace forksim::obs
