// Matrix sweep: drive the declarative failure-scenario matrix from the
// command line — every cell composes partition + Byzantine + churn +
// cold-restart adversity into one deterministic chaos run, scored by the
// availability probe (per-phase availability, degraded time, time-to-heal).
//
//   ./build/examples/matrix_sweep [seed]
//       [--byz 0,0.1,0.25] [--off 0,0.2,0.4] [--part 0,0.5] [--dur 30,60]
//       [--clients 0,0.25,0.5] [--bug-window 200,320]
//       [--eclipse 0,16,32]
//       [--quorum 0.6] [--interval 5] [--cold 1.0] [--disk-faults 0.3]
//
// Axes are comma-separated lists; every combination becomes one cell.
// --clients adds the minority-share axis: cells with a nonzero share run
// that fraction of nodes as a buggy parity minority whose validation
// quirk is live across the failure episode until the hotfix lands.
// --eclipse adds the sybil-budget axis: cells with a nonzero budget run a
// defended eclipse swarm of that many sybils against one victim from the
// moment the episode opens.
// --bug-window onset,patch moves the episode start to `onset` and
// replaces the duration axis with {patch - onset}. The whole sweep
// replays bit-identically from the seed (the matrix fingerprint proves
// it).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/matrix.hpp"
#include "support/table.hpp"

using namespace forksim;
using namespace forksim::sim;

namespace {

std::vector<double> parse_list(const char* arg) {
  std::vector<double> out;
  const std::string s(arg);
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    if (comma > pos)
      out.push_back(std::strtod(s.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  MatrixParams mp;
  ChaosParams& cp = mp.base;
  cp.scenario.nodes_eth = 6;
  cp.scenario.nodes_etc = 3;
  cp.scenario.miners_per_side_eth = 2;
  cp.scenario.miners_per_side_etc = 1;
  cp.scenario.total_hashrate = 3e4;
  cp.scenario.etc_hashpower_fraction = 0.25;
  cp.scenario.fork_block = 8;
  cp.scenario.seed = 9;
  cp.extra_loss = 0.0;
  cp.duplicate_prob = 0.0;
  cp.reorder_prob = 0.0;
  cp.restart_prob = 1.0;
  cp.mean_downtime = 60.0;
  cp.cold_restart_prob = 1.0;
  cp.storage_faults.torn_write_prob = 0.3;
  cp.storage_faults.tail_truncate_prob = 0.3;
  cp.storage_faults.bit_rot_prob = 0.2;
  cp.mining_duration = 1000.0;
  cp.settle_deadline = 800.0;
  mp.failure_start = 300.0;
  mp.axes.byzantine_share = {0.0, 0.25};
  mp.axes.offline_share = {0.0, 0.4};
  mp.axes.partitioned_share = {0.0, 0.5};
  mp.axes.partition_duration = {60.0};

  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--byz") == 0) {
      mp.axes.byzantine_share = parse_list(next("--byz"));
    } else if (std::strcmp(argv[i], "--off") == 0) {
      mp.axes.offline_share = parse_list(next("--off"));
    } else if (std::strcmp(argv[i], "--part") == 0) {
      mp.axes.partitioned_share = parse_list(next("--part"));
    } else if (std::strcmp(argv[i], "--dur") == 0) {
      mp.axes.partition_duration = parse_list(next("--dur"));
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      mp.axes.minority_share = parse_list(next("--clients"));
    } else if (std::strcmp(argv[i], "--eclipse") == 0) {
      mp.axes.eclipse_budget = parse_list(next("--eclipse"));
    } else if (std::strcmp(argv[i], "--bug-window") == 0) {
      const std::vector<double> window = parse_list(next("--bug-window"));
      if (window.size() != 2 || window[1] <= window[0]) {
        std::cerr << "--bug-window needs onset,patch with patch > onset\n";
        std::exit(2);
      }
      mp.failure_start = window[0];
      mp.axes.partition_duration = {window[1] - window[0]};
    } else if (std::strcmp(argv[i], "--quorum") == 0) {
      cp.probe.quorum_fraction = std::strtod(next("--quorum"), nullptr);
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      cp.probe.interval = std::strtod(next("--interval"), nullptr);
    } else if (std::strcmp(argv[i], "--cold") == 0) {
      cp.cold_restart_prob = std::strtod(next("--cold"), nullptr);
    } else if (std::strcmp(argv[i], "--disk-faults") == 0) {
      const double rate = std::strtod(next("--disk-faults"), nullptr);
      cp.storage_faults.torn_write_prob = rate;
      cp.storage_faults.tail_truncate_prob = rate;
      cp.storage_faults.bit_rot_prob = rate * 0.6;
    } else {
      cp.scenario.seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  std::cout << "== matrix sweep ==\n"
            << mp.axes.cell_count() << " cells ("
            << mp.axes.byzantine_share.size() << " byzantine x "
            << mp.axes.offline_share.size() << " offline x "
            << mp.axes.partitioned_share.size() << " partitioned x "
            << mp.axes.partition_duration.size() << " duration x "
            << mp.axes.minority_share.size() << " minority x "
            << mp.axes.eclipse_budget.size() << " eclipse), "
            << cp.scenario.nodes_eth + cp.scenario.nodes_etc
            << " nodes per cell, seed " << cp.scenario.seed
            << ", quorum " << fmt(cp.probe.quorum_fraction, 2)
            << ", episode opens t=" << fmt(mp.failure_start, 0) << "\n\n";

  MatrixRunner runner(mp);
  const MatrixReport report = runner.run(&std::cout);

  Table table({"byz", "off", "part", "dur s", "min", "ecl", "conv",
               "avail pre", "during", "post", "degraded s", "heal s",
               "banned", "disputed", "replayed"});
  for (const MatrixCell& c : report.cells) {
    const AvailabilityStats& a = c.report.availability;
    table.add_row(
        {fmt(c.spec.byzantine_share, 2), fmt(c.spec.offline_share, 2),
         fmt(c.spec.partitioned_share, 2), fmt(c.spec.partition_duration, 0),
         fmt(c.spec.minority_share, 2), fmt(c.spec.eclipse_budget, 0),
         c.report.converged ? "yes" : "NO", fmt(a.pre, 3),
         fmt(a.during_failure, 3), fmt(a.post, 3),
         fmt(a.degraded_seconds, 0), fmt(a.time_to_heal, 0),
         std::to_string(c.report.peers_banned),
         std::to_string(c.report.disputed_blocks),
         std::to_string(c.report.store_blocks_replayed)});
  }
  std::cout << "\n";
  table.print(std::cout);

  const std::size_t converged = report.converged_cells();
  std::cout << "\n" << converged << "/" << report.cells.size()
            << " cells converged\nmatrix fingerprint: "
            << report.fingerprint.hex().substr(0, 32)
            << "...\nrerun with the same seed and axes to replay the "
               "identical sweep.\n";
  return converged == report.cells.size() ? 0 : 1;
}
