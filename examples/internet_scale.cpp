// Internet-scale run: a few thousand simulated nodes on a degree-
// configurable gossip mesh with six-continent latency geography, living
// through an optional partition — the ScaleSim engine from the command
// line.
//
//   ./build/examples/internet_scale [nodes] [seed]
//       [--degree 16] [--powerlaw] [--alpha 2.2] [--flat]
//       [--rtt-scale 1.0] [--miners 24] [--interval 13]
//       [--duration 3600] [--cut-start -1] [--cut-duration 300]
//       [--cut-fraction 0.3]
//
// Defaults: 2000 nodes, uniform k=16 mesh, the internet geo profile, no
// cut. Every run replays bit-identically from the seed; the report's
// fingerprint is printed so two invocations can prove it to each other.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/scalesim.hpp"
#include "support/table.hpp"

using namespace forksim;
using namespace forksim::sim;

int main(int argc, char** argv) {
  ScaleParams p;
  p.nodes = 2000;
  p.topology.degree = 16;
  p.geo = p2p::GeoParams::internet();
  p.geo.enabled = true;
  p.miners = 24;
  p.cut_start = -1.0;
  p.cut_duration = 300.0;
  p.cut_fraction = 0.3;

  double rtt_scale = 1.0;
  bool positional_nodes = false;
  for (int i = 1; i < argc; ++i) {
    const auto next_d = [&] { return std::strtod(argv[++i], nullptr); };
    if (std::strcmp(argv[i], "--degree") == 0 && i + 1 < argc) {
      p.topology.degree = static_cast<std::size_t>(next_d());
    } else if (std::strcmp(argv[i], "--powerlaw") == 0) {
      p.topology.distribution = p2p::DegreeDistribution::kPowerLaw;
    } else if (std::strcmp(argv[i], "--alpha") == 0 && i + 1 < argc) {
      p.topology.alpha = next_d();
    } else if (std::strcmp(argv[i], "--flat") == 0) {
      p.geo.enabled = false;
    } else if (std::strcmp(argv[i], "--rtt-scale") == 0 && i + 1 < argc) {
      rtt_scale = next_d();
    } else if (std::strcmp(argv[i], "--miners") == 0 && i + 1 < argc) {
      p.miners = static_cast<std::size_t>(next_d());
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      p.block_interval = next_d();
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      p.duration = next_d();
    } else if (std::strcmp(argv[i], "--cut-start") == 0 && i + 1 < argc) {
      p.cut_start = next_d();
    } else if (std::strcmp(argv[i], "--cut-duration") == 0 && i + 1 < argc) {
      p.cut_duration = next_d();
    } else if (std::strcmp(argv[i], "--cut-fraction") == 0 && i + 1 < argc) {
      p.cut_fraction = next_d();
    } else if (!positional_nodes) {
      p.nodes = static_cast<std::size_t>(std::strtoull(argv[i], nullptr, 10));
      positional_nodes = true;
    } else {
      p.seed = std::strtoull(argv[i], nullptr, 10);
    }
  }
  if (p.geo.enabled && rtt_scale != 1.0) {
    p.geo = p.geo.scaled(rtt_scale);
    p.geo.enabled = true;
  }

  std::cout << "internet-scale run: " << p.nodes << " nodes, "
            << (p.topology.distribution == p2p::DegreeDistribution::kUniform
                    ? "uniform k=" + std::to_string(p.topology.degree)
                    : "power-law k_min=" + std::to_string(p.topology.degree))
            << " mesh, "
            << (p.geo.enabled ? "internet geography (rtt x" +
                                    fmt(rtt_scale, 1) + ")"
                              : "flat " + fmt(p.uniform_base * 1e3, 0) +
                                    " ms links")
            << ",\n  " << p.miners << " miners at " << p.block_interval
            << " s, " << p.duration << " s horizon, seed " << p.seed;
  if (p.cut_start >= 0.0)
    std::cout << ", cut " << fmt(p.cut_fraction * 100.0, 0) << "% at t="
              << p.cut_start << " for " << p.cut_duration << " s";
  std::cout << "\n\n";

  ScaleSim sim(p);
  const ScaleReport r = sim.run();

  Table outcome({"metric", "value"});
  outcome.add_row({"blocks mined", std::to_string(r.blocks_mined)});
  outcome.add_row({"canonical height", std::to_string(r.canonical_height)});
  outcome.add_row({"stale rate", fmt(r.stale_rate * 100.0, 2) + " %"});
  outcome.add_row({"converged", std::string(r.converged ? "yes" : "NO")});
  outcome.add_row({"propagation p50 / p90 / p99",
                   fmt(r.prop_p50, 3) + " / " + fmt(r.prop_p90, 3) + " / " +
                       fmt(r.prop_p99, 3) + " s"});
  outcome.add_row({"deliveries / dups / cut-dropped",
                   std::to_string(r.deliveries) + " / " +
                       std::to_string(r.dup_suppressed) + " / " +
                       std::to_string(r.cut_dropped)});
  outcome.add_row({"fairness max dev", fmt(r.fairness_max_dev, 2)});
  outcome.add_row({"events", std::to_string(r.events)});
  outcome.add_row({"scheduler max queue",
                   std::to_string(r.scheduler.max_size)});
  outcome.print(std::cout);

  if (r.regions.size() > 1) {
    std::cout << "\nby region:\n";
    Table regions({"region", "nodes", "miners", "mined", "canonical",
                   "stale %", "fairness"});
    for (const RegionStats& rs : r.regions)
      regions.add_row({rs.name, std::to_string(rs.population),
                       std::to_string(rs.miners),
                       std::to_string(rs.blocks_mined),
                       std::to_string(rs.blocks_canonical),
                       fmt(rs.stale_rate * 100.0, 2), fmt(rs.fairness, 2)});
    regions.print(std::cout);
  }

  std::cout << "\nfingerprint: " << r.fingerprint.hex()
            << "\ntopology:    " << r.topology_digest.hex() << "\n";
  return r.converged ? 0 : 1;
}
