// Echo forensics — implementing the paper's future work:
//
//   "exploring the transactions to detect malicious versus benign
//    rebroadcasts"  (§4)
//
// Nine months of simulated cross-chain echoes, each carrying ground truth
// (attacker replay vs. dual-intent sender), classified by the rule-based
// detector in analysis/forensics.hpp. Prints the confusion matrix, the
// precision/recall, and a threshold sweep.
//
//   ./build/examples/echo_forensics
#include <iostream>

#include "analysis/forensics.hpp"
#include "sim/replay.hpp"
#include "sim/workload.hpp"
#include "support/table.hpp"

using namespace forksim;
using namespace forksim::sim;
using namespace forksim::analysis;

int main() {
  std::cout << "== echo forensics: malicious vs benign rebroadcasts ==\n\n";

  // generate nine months of labeled echoes
  Rng rng(4);
  WorkloadModel workload(WorkloadParams{}, rng.fork());
  ReplayParams params;
  params.benign_echo = 0.05;  // enough benign traffic to make it interesting
  ReplaySim replay(params, rng.fork());
  std::vector<ReplaySim::EchoSample> samples;
  replay.set_sample_sink(&samples);

  for (double day = 0; day < 270.0; ++day) {
    const auto load = workload.step(day);
    replay.step(day, load.eth_txs, load.etc_txs);
  }

  std::vector<std::pair<EchoFeatures, EchoLabel>> labeled;
  std::size_t malicious = 0;
  for (const auto& s : samples) {
    EchoFeatures f;
    f.delay_seconds = s.delay_seconds;
    f.sender_active_on_dest = s.sender_active_on_dest;
    f.self_transfer = s.self_transfer;
    f.value_ether = s.value_ether;
    labeled.emplace_back(
        f, s.is_attack ? EchoLabel::kMalicious : EchoLabel::kBenign);
    if (s.is_attack) ++malicious;
  }
  std::cout << "dataset: " << labeled.size() << " echoes, " << malicious
            << " malicious (" << fmt(100.0 * malicious / labeled.size(), 1)
            << "%)\n\n";

  // the default classifier
  const ConfusionMatrix m = evaluate(labeled);
  std::cout << m.to_string() << "\n";
  std::cout << "precision " << fmt(m.precision(), 3) << ", recall "
            << fmt(m.recall(), 3) << ", accuracy " << fmt(m.accuracy(), 3)
            << "\n\n";

  // threshold sweep: the operating curve an investigator would choose from
  Table sweep({"threshold", "precision", "recall", "accuracy"});
  for (double threshold : {0.3, 0.4, 0.5, 0.6, 0.7}) {
    ClassifierParams p;
    p.threshold = threshold;
    const ConfusionMatrix mt = evaluate(labeled, p);
    sweep.add_row({fmt(threshold, 2), fmt(mt.precision(), 3),
                   fmt(mt.recall(), 3), fmt(mt.accuracy(), 3)});
  }
  sweep.print(std::cout);

  // single-feature ablation: which signals carry the detection?
  std::cout << "\nfeature ablation (accuracy with one signal zeroed):\n";
  auto ablate = [&](const char* name, auto&& mutate) {
    auto copy = labeled;
    for (auto& [f, label] : copy) mutate(f);
    std::cout << "  without " << name << ": "
              << fmt(evaluate(copy).accuracy(), 3) << " (full: "
              << fmt(m.accuracy(), 3) << ")\n";
  };
  ablate("delay", [](EchoFeatures& f) { f.delay_seconds = 300; });
  ablate("dest-activity",
         [](EchoFeatures& f) { f.sender_active_on_dest = false; });
  ablate("self-transfer", [](EchoFeatures& f) { f.self_transfer = false; });
  ablate("value", [](EchoFeatures& f) { f.value_ether = 10; });

  if (m.accuracy() < 0.8) {
    std::cout << "\nclassifier accuracy degraded — investigate\n";
    return 1;
  }
  std::cout << "\n(the feature distributions are simulation assumptions — "
               "see analysis/forensics.hpp;\nthe harness is the point: "
               "labeled echoes in, operating curve out.)\n";
  return 0;
}
