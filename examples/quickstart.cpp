// Quickstart: the forksim core API in five minutes.
//
// Builds a chain with the full EVM executor, funds accounts, mines blocks
// with transactions, deploys and calls a contract, and inspects state —
// everything a downstream user needs to get going.
//
//   cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/chain.hpp"
#include "core/txpool.hpp"
#include "evm/assembler.hpp"
#include "evm/contracts.hpp"
#include "evm/executor.hpp"

using namespace forksim;
using namespace forksim::core;

int main() {
  std::cout << "== forksim quickstart ==\n\n";

  // 1. keys and addresses -------------------------------------------------
  const PrivateKey alice = PrivateKey::from_seed(1);
  const PrivateKey bob = PrivateKey::from_seed(2);
  const Address miner = derive_address(PrivateKey::from_seed(99));
  std::cout << "alice: 0x" << derive_address(alice).hex() << "\n";
  std::cout << "bob:   0x" << derive_address(bob).hex() << "\n\n";

  // 2. a blockchain with the full EVM and a genesis allocation ------------
  evm::EvmExecutor executor;
  Blockchain chain(ChainConfig::mainnet_pre_fork(), executor,
                   {{derive_address(alice), ether(1000)}});
  std::cout << "genesis hash: 0x" << chain.genesis().hash().hex() << "\n";
  std::cout << "alice balance: "
            << chain.head_state().balance(derive_address(alice)).to_dec()
            << " wei\n\n";

  // 3. a signed transfer, mined into block 1 ------------------------------
  const Transaction transfer = make_transaction(
      alice, /*nonce=*/0, derive_address(bob), ether(25),
      /*chain_id=*/std::nullopt);
  Block block1 = chain.produce_block(miner, /*timestamp=*/14, {transfer});
  auto outcome = chain.import(block1);
  std::cout << "block 1 import: " << to_string(outcome.result)
            << ", txs: " << block1.transactions.size()
            << ", difficulty: " << block1.header.difficulty.to_dec() << "\n";
  std::cout << "bob balance:   "
            << chain.head_state().balance(derive_address(bob)).to_dec()
            << " wei\n";
  std::cout << "miner reward:  "
            << chain.head_state().balance(miner).to_dec() << " wei\n\n";

  // 4. deploy a contract (a one-slot counter) and poke it ------------------
  const Bytes init = evm::wrap_as_init_code(evm::contracts::counter_runtime());
  const Transaction deploy = make_transaction(
      alice, 1, /*to=*/std::nullopt, Wei(0), std::nullopt, gwei(20),
      1'000'000, init);
  Block block2 = chain.produce_block(miner, 28, {deploy});
  chain.import(block2);
  const auto* receipts = chain.receipts_of(block2.hash());
  const Address counter = *(*receipts)[0].created_contract;
  std::cout << "counter contract at 0x" << counter.hex() << "\n";

  const Transaction poke =
      make_transaction(alice, 2, counter, Wei(0), std::nullopt, gwei(20),
                       100'000);
  Block block3 = chain.produce_block(miner, 42, {poke, /* and a transfer */
                                                 make_transaction(
                                                     bob, 0,
                                                     derive_address(alice),
                                                     ether(1), std::nullopt)});
  chain.import(block3);
  std::cout << "counter value: "
            << chain.head_state().storage_at(counter, U256(0)).to_dec()
            << " (after 1 call)\n\n";

  // 5. the chain is a real chain ------------------------------------------
  std::cout << "height " << chain.height() << ", head 0x"
            << chain.head().hash().hex().substr(0, 16) << "..., TD "
            << chain.head_total_difficulty().to_dec() << "\n";
  std::cout << "state root 0x" << chain.head().header.state_root.hex()
            << "\n";

  // every block links to its parent and commits to its body
  for (BlockNumber n = 1; n <= chain.height(); ++n) {
    const Block* b = chain.block_by_number(n);
    if (!b->transactions_root_matches()) {
      std::cout << "INVARIANT VIOLATION at block " << n << "\n";
      return 1;
    }
  }
  std::cout << "\nall block commitments verified — done.\n";
  return 0;
}
