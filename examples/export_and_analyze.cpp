// The paper's measurement methodology, end to end:
//
//   "To collect data, we ran full Ethereum nodes in both the ETH and ETC
//    networks... We then exported all block and transaction information
//    from the nodes and processed it in a separate database."  (§3.1)
//
// This example runs full nodes through the fork on the simulated network
// while users transact (and an attacker rebroadcasts legacy transactions
// across the partition), then exports both canonical chains into
// analysis::ChainIndex and prints the measurement report: block production,
// transaction volumes, contract fractions, pool (coinbase) concentration,
// and detected echoes.
//
//   ./build/examples/export_and_analyze
#include <iostream>

#include "analysis/chainindex.hpp"
#include "sim/scenario.hpp"
#include "support/table.hpp"

using namespace forksim;
using namespace forksim::sim;
using analysis::Chain;

int main() {
  std::cout << "== export & analyze (the paper's §3.1 pipeline) ==\n\n";

  ScenarioParams params;
  params.nodes_eth = 6;
  params.nodes_etc = 3;
  params.miners_per_side_eth = 3;
  params.miners_per_side_etc = 2;
  params.fork_block = 10;
  params.total_hashrate = 4e4;
  params.etc_hashpower_fraction = 0.3;
  params.seed = 77;
  ForkScenario scenario(params);

  // run past the fork
  std::cout << "running the network through the fork";
  for (int i = 0; i < 600 && (scenario.best_height_etc() < 14 ||
                              scenario.best_height_eth() < 14);
       ++i) {
    scenario.run_for(60.0);
    if (i % 10 == 0) std::cout << "." << std::flush;
  }
  std::cout << " done (ETH height " << scenario.best_height_eth()
            << ", ETC height " << scenario.best_height_etc() << ")\n";

  // users transact on both sides; an attacker echoes ETH txs into ETC
  FullNode& eth_node = scenario.node(0);
  FullNode& etc_node = scenario.node(params.nodes_eth);
  Rng rng(123);
  std::size_t injected = 0;
  std::size_t echoed = 0;
  for (int round = 0; round < 30; ++round) {
    const auto& key = scenario.accounts()[rng.uniform(
        scenario.accounts().size())];
    const Address sender = derive_address(key);
    const Address to = derive_address(
        scenario.accounts()[rng.uniform(scenario.accounts().size())]);
    const std::uint64_t nonce =
        eth_node.chain().head_state().nonce(sender);
    const auto tx = core::make_transaction(key, nonce, to, core::ether(1),
                                           std::nullopt);
    if (eth_node.submit_transaction(tx) == core::PoolAddResult::kAdded) {
      ++injected;
      // the §3.3 attacker: rebroadcast the same bytes into the other chain
      if (rng.chance(0.6) &&
          etc_node.submit_transaction(tx) == core::PoolAddResult::kAdded)
        ++echoed;
    }
    scenario.run_for(120.0);
  }
  scenario.run_for(600.0);
  std::cout << "injected " << injected << " ETH transactions, attacker "
            << "rebroadcast " << echoed << " of them into ETC\n\n";

  // ---- the export step ----------------------------------------------------
  analysis::ChainIndex index;
  index.ingest_chain(Chain::kEth, eth_node.chain());
  index.ingest_chain(Chain::kEtc, etc_node.chain());

  // ---- the analysis step ----------------------------------------------------
  Table summary({"metric", "ETH", "ETC"});
  summary.add_row({"canonical blocks", std::to_string(index.block_count(Chain::kEth)),
                   std::to_string(index.block_count(Chain::kEtc))});
  summary.add_row({"transactions", std::to_string(index.tx_count(Chain::kEth)),
                   std::to_string(index.tx_count(Chain::kEtc))});
  summary.add_row(
      {"top-1 pool share",
       fmt(index.top_pool_share(Chain::kEth, 1) * 100, 1) + "%",
       fmt(index.top_pool_share(Chain::kEtc, 1) * 100, 1) + "%"});
  summary.add_row(
      {"top-3 pool share",
       fmt(index.top_pool_share(Chain::kEth, 3) * 100, 1) + "%",
       fmt(index.top_pool_share(Chain::kEtc, 3) * 100, 1) + "%"});
  summary.print(std::cout);

  std::cout << "\ncoinbase (pool) histogram, ETH:\n";
  for (const auto& [addr, wins] : index.coinbase_histogram(Chain::kEth))
    std::cout << "  0x" << addr.hex().substr(0, 12) << "...  " << wins
              << " blocks\n";

  std::cout << "\ncross-chain echoes detected by the pipeline: "
            << index.echoes().total_echoes() << " (into ETC: "
            << index.echoes().echoes_into(Chain::kEtc) << ")\n";
  for (const auto& echo : index.echo_log()) {
    const auto* record = index.transaction(
        echo.echoed_on == Chain::kEtc ? Chain::kEtc : Chain::kEth, echo.tx);
    std::cout << "  tx 0x" << echo.tx.hex().substr(0, 12)
              << "... first on "
              << (echo.first_seen == Chain::kEth ? "ETH" : "ETC")
              << ", echoed on "
              << (echo.echoed_on == Chain::kEth ? "ETH" : "ETC");
    if (record != nullptr)
      std::cout << " (block " << record->block_number << ")";
    std::cout << "\n";
  }

  if (index.echoes().total_echoes() == 0) {
    std::cout << "\nno echoes landed this run — rerun with another seed\n";
    return 1;
  }
  std::cout << "\nthe same pipeline the authors ran — on simulated chains.\n";
  return 0;
}
