// The DAO saga, end to end, on real protocol components:
//
//   1. a crowdfunding "bank" contract with the send-before-zero bug is
//      deployed and funded (the DAO, April 2016);
//   2. an attacker contract drains it through reentrancy (June 2016);
//   3. a hard fork is scheduled: the ETH side applies the irregular state
//      change returning the loot, the ETC side refuses (July 20 2016);
//   4. both chains continue — two networks, one shared pre-fork history.
//
//   ./build/examples/dao_fork
#include <iostream>

#include "core/chain.hpp"
#include "evm/contracts.hpp"
#include "evm/executor.hpp"

using namespace forksim;
using namespace forksim::core;

namespace {

Block mine(Blockchain& chain, const Address& miner,
           const std::vector<Transaction>& txs = {}) {
  Block b = chain.produce_block(miner, chain.head().header.timestamp + 14,
                                txs);
  const auto outcome = chain.import(b);
  if (outcome.result != ImportResult::kImported) {
    std::cerr << "unexpected import failure: " << to_string(outcome.result)
              << "\n";
    std::exit(1);
  }
  return b;
}

std::string eth_str(const Wei& wei) {
  return (wei / ether(1)).to_dec() + " ether";
}

}  // namespace

int main() {
  std::cout << "== the DAO fork, reproduced ==\n\n";

  const PrivateKey investor = PrivateKey::from_seed(1);
  const PrivateKey attacker = PrivateKey::from_seed(666);
  const Address miner = derive_address(PrivateKey::from_seed(99));
  const Address refund_contract = derive_address(PrivateKey::from_seed(777));

  constexpr BlockNumber kForkBlock = 7;
  const GenesisAlloc alloc = {{derive_address(investor), ether(500)},
                              {derive_address(attacker), ether(10)}};

  evm::EvmExecutor executor;
  Blockchain pre_fork(ChainConfig::mainnet_pre_fork(), executor, alloc);

  // --- act 1: the DAO, operating as designed ------------------------------
  const Transaction deploy_dao = make_transaction(
      investor, 0, std::nullopt, Wei(0), std::nullopt, gwei(20), 3'000'000,
      evm::wrap_as_init_code(evm::contracts::mini_dao_runtime()));
  Block b1 = mine(pre_fork, miner, {deploy_dao});
  const Address dao =
      *(*pre_fork.receipts_of(b1.hash()))[0].created_contract;
  std::cout << "block 1: DAO (crowdfunding + voting) deployed at 0x"
            << dao.hex() << "\n";

  const Transaction invest =
      make_transaction(investor, 1, dao, ether(300), std::nullopt, gwei(20),
                       200'000, evm::contracts::dao_deposit_calldata());
  mine(pre_fork, miner, {invest});
  std::cout << "block 2: investor deposits 300 ether for voting power; "
            << "DAO balance " << eth_str(pre_fork.head_state().balance(dao))
            << "\n";

  // the DAO working as intended: fund a project by majority vote
  const Address project = derive_address(PrivateKey::from_seed(321));
  const Transaction propose = make_transaction(
      investor, 2, dao, Wei(0), std::nullopt, gwei(20), 300'000,
      evm::contracts::dao_propose_calldata(project, ether(40)));
  const Transaction vote =
      make_transaction(investor, 3, dao, Wei(0), std::nullopt, gwei(20),
                       300'000, evm::contracts::dao_vote_calldata());
  const Transaction execute =
      make_transaction(investor, 4, dao, Wei(0), std::nullopt, gwei(20),
                       300'000, evm::contracts::dao_execute_calldata());
  mine(pre_fork, miner, {propose, vote, execute});
  std::cout << "block 3: proposal -> vote -> execute; project funded with "
            << eth_str(pre_fork.head_state().balance(project)) << "\n";

  // --- act 2: the drain ---------------------------------------------------
  const Transaction deploy_attack = make_transaction(
      attacker, 0, std::nullopt, Wei(0), std::nullopt, gwei(20), 2'000'000,
      evm::wrap_as_init_code(evm::contracts::reentrancy_attacker_runtime(
          20, evm::contracts::kDaoDeposit, evm::contracts::kDaoWithdraw)));
  Block b3 = mine(pre_fork, miner, {deploy_attack});
  const Address drainer =
      *(*pre_fork.receipts_of(b3.hash()))[0].created_contract;

  // gas must fit under the 4.7M block gas limit or the miner skips the tx
  const Transaction start = make_transaction(
      attacker, 1, drainer, ether(1), std::nullopt, gwei(20), 4'000'000,
      evm::contracts::attacker_start_calldata(dao));
  mine(pre_fork, miner, {start});
  const Wei loot = pre_fork.head_state().balance(drainer);
  std::cout << "block 5: reentrancy drain via withdraw() — attacker "
               "contract holds "
            << eth_str(loot) << " (deposited only 1)\n";
  std::cout << "         DAO balance now "
            << eth_str(pre_fork.head_state().balance(dao)) << "\n\n";

  // --- act 3: the community splits ----------------------------------------
  // Two client populations run from the same history with different
  // configs; both schedule the fork at block 6, only ETH supports it.
  Blockchain eth(ChainConfig::eth(kForkBlock), executor, alloc);
  Blockchain etc(ChainConfig::etc(kForkBlock, std::nullopt), executor, alloc);
  eth.set_dao_accounts({drainer}, refund_contract);
  etc.set_dao_accounts({drainer}, refund_contract);

  // replay the shared pre-fork history into both
  for (BlockNumber n = 1; n <= pre_fork.height(); ++n) {
    const Block* b = pre_fork.block_by_number(n);
    if (eth.import(*b).result != ImportResult::kImported ||
        etc.import(*b).result != ImportResult::kImported) {
      std::cerr << "pre-fork history must be shared!\n";
      return 1;
    }
  }
  std::cout << "pre-fork history (blocks 1.." << pre_fork.height()
            << ") accepted by both client populations\n";

  mine(eth, miner);  // block 5 on each side (still identical rules)
  mine(etc, miner);

  // block 6: the fork block
  Block eth_fork = mine(eth, miner);
  Block etc_fork = mine(etc, miner);
  std::cout << "\nblock 6 (the fork block):\n";
  std::cout << "  ETH: 0x" << eth_fork.hash().hex().substr(0, 16)
            << "... extra_data=\""
            << std::string(eth_fork.header.extra_data.begin(),
                           eth_fork.header.extra_data.end())
            << "\"\n";
  std::cout << "  ETC: 0x" << etc_fork.hash().hex().substr(0, 16)
            << "... extra_data=\"\"\n";

  // each side rejects the other's fork block: the permanent partition
  std::cout << "  ETC imports ETH's fork block -> "
            << to_string(etc.import(eth_fork).result) << "\n";
  std::cout << "  ETH imports ETC's fork block -> "
            << to_string(eth.import(etc_fork).result) << "\n\n";

  // --- act 4: two worlds ---------------------------------------------------
  std::cout << "after the fork:\n";
  std::cout << "  ETH: attacker contract "
            << eth_str(eth.head_state().balance(drainer))
            << ", refund contract "
            << eth_str(eth.head_state().balance(refund_contract)) << "\n";
  std::cout << "  ETC: attacker contract "
            << eth_str(etc.head_state().balance(drainer))
            << ", refund contract "
            << eth_str(etc.head_state().balance(refund_contract))
            << "  (\"code is law\")\n";

  mine(eth, miner);
  mine(etc, miner);
  std::cout << "\nboth chains keep producing blocks (height " << eth.height()
            << " each) — a persistent network partition.\n";
  return 0;
}
