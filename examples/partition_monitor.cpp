// Watch the partition form: a live network of full protocol nodes (Kademlia
// discovery, Status handshakes, DAO challenges, block gossip) mining toward
// a scheduled hard fork. The monitor prints the network state every few
// simulated minutes — peer links across the divide, best heights, distinct
// heads — as the one network becomes two.
//
//   ./build/examples/partition_monitor
#include <iomanip>
#include <iostream>

#include "core/headerchain.hpp"
#include "sim/scenario.hpp"
#include "support/table.hpp"

using namespace forksim;
using namespace forksim::sim;

int main() {
  std::cout << "== partition monitor ==\n";

  ScenarioParams params;
  params.nodes_eth = 8;
  params.nodes_etc = 4;
  params.miners_per_side_eth = 3;
  params.miners_per_side_etc = 2;
  params.fork_block = 15;
  params.total_hashrate = 4e4;
  params.etc_hashpower_fraction = 0.25;
  params.seed = 2016;
  ForkScenario scenario(params);

  std::cout << params.nodes_eth << " fork-supporting nodes, "
            << params.nodes_etc << " fork-rejecting nodes, fork at block "
            << params.fork_block << "\n\n";

  Table table({"t (min)", "ETH height", "ETC height", "distinct heads",
               "cross-side links", "wrong-fork drops"});

  bool partition_seen = false;
  for (int minute = 0; minute <= 120; minute += 5) {
    if (minute > 0) scenario.run_for(300.0);
    const auto eth_h = scenario.best_height_eth();
    const auto etc_h = scenario.best_height_etc();
    const auto links = scenario.cross_side_links();
    const auto drops = scenario.total_wrong_fork_drops();
    table.add_row({std::to_string(minute), std::to_string(eth_h),
                   std::to_string(etc_h),
                   std::to_string(scenario.distinct_heads()),
                   std::to_string(links), std::to_string(drops)});
    if (eth_h >= params.fork_block && etc_h >= params.fork_block &&
        links == 0 && drops > 0)
      partition_seen = true;
    if (partition_seen && minute >= 60) break;
  }
  table.print(std::cout);

  std::cout << "\n";
  if (!partition_seen) {
    std::cout << "partition did not complete within the window — rerun with "
                 "a different seed\n";
    return 1;
  }

  // show the two histories side by side around the fork
  std::cout << "canonical chains around the fork block:\n";
  const auto& eth_chain = scenario.node(0).chain();
  const auto& etc_chain = scenario.node(params.nodes_eth).chain();
  for (core::BlockNumber n = params.fork_block - 2;
       n <= std::min(eth_chain.height(), etc_chain.height()); ++n) {
    const auto* e = eth_chain.block_by_number(n);
    const auto* c = etc_chain.block_by_number(n);
    if (e == nullptr || c == nullptr) break;
    const bool same = e->hash() == c->hash();
    std::cout << "  block " << std::setw(3) << n << ":  ETH 0x"
              << e->hash().hex().substr(0, 12) << "  ETC 0x"
              << c->hash().hex().substr(0, 12)
              << (same ? "   (shared)" : "   <-- diverged") << "\n";
    if (n >= params.fork_block + 3) break;
  }

  // a block-explorer-style light monitor: two header chains (one per
  // config) fed from the full nodes' canonical histories — the cheap way a
  // measurement study tracks both sides (analysis/chainindex.hpp ingests
  // full blocks the same way)
  core::HeaderChain eth_monitor(core::ChainConfig::eth(params.fork_block),
                                eth_chain.genesis().header);
  core::HeaderChain etc_monitor(
      core::ChainConfig::etc(params.fork_block, std::nullopt),
      etc_chain.genesis().header);
  // network id 1 is shared; the monitors' configs differ only in the rule
  for (core::BlockNumber n = 1; n <= eth_chain.height(); ++n)
    eth_monitor.import(eth_chain.block_by_number(n)->header);
  for (core::BlockNumber n = 1; n <= etc_chain.height(); ++n)
    etc_monitor.import(etc_chain.block_by_number(n)->header);
  std::cout << "\nlight monitors (headers only): ETH at height "
            << eth_monitor.height() << ", ETC at height "
            << etc_monitor.height() << "\n";
  // cross-feeding fails exactly at the fork block
  const auto verdict = etc_monitor.import(
      eth_chain.block_by_number(params.fork_block)->header);
  std::cout << "ETC monitor fed ETH's fork header -> "
            << core::to_string(verdict) << "\n";

  std::cout << "\nthe networks separated: every fork-rejecting node dropped "
               "its fork-supporting peers\n(and vice versa) after the DAO "
               "challenge — a permanent partition, as in the paper.\n";
  return 0;
}
