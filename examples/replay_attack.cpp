// Cross-chain replay ("echo") attack and its mitigations — the paper's
// §3.3 vulnerability as runnable code.
//
// A user holds pre-fork funds, so the same account exists on ETH and ETC.
// She pays a merchant on ETH with a legacy transaction; the merchant (or
// anyone) rebroadcasts the identical bytes on ETC and collects her ETC too.
// Then the mitigations: EIP-155 chain ids, and splitting funds to fresh
// per-chain addresses.
//
//   ./build/examples/replay_attack
#include <iostream>

#include "analysis/echo.hpp"
#include "core/chain.hpp"
#include "core/receipt.hpp"
#include "evm/executor.hpp"

using namespace forksim;
using namespace forksim::core;

namespace {

Block mine(Blockchain& chain, const std::vector<Transaction>& txs) {
  static const Address kMiner = derive_address(PrivateKey::from_seed(99));
  Block b = chain.produce_block(kMiner, chain.head().header.timestamp + 14,
                                txs);
  chain.import(b);
  return b;
}

std::string eth_str(const Wei& wei) {
  return (wei / ether(1)).to_dec() + " ether";
}

}  // namespace

int main() {
  std::cout << "== cross-chain transaction replay ==\n\n";

  const PrivateKey user = PrivateKey::from_seed(1);
  const PrivateKey merchant = PrivateKey::from_seed(2);
  const Address user_addr = derive_address(user);
  const Address merchant_addr = derive_address(merchant);

  // the same pre-fork account exists — with the same balance — on both
  // chains (ETC activates EIP-155 at block 3 in this compressed timeline)
  const GenesisAlloc alloc = {{user_addr, ether(100)}};
  evm::EvmExecutor executor;
  Blockchain eth(ChainConfig::eth(0), executor, alloc);
  Blockchain etc(ChainConfig::etc(0, /*eip155_block=*/3), executor, alloc);

  std::cout << "user on ETH: " << eth_str(eth.head_state().balance(user_addr))
            << ",  on ETC: " << eth_str(etc.head_state().balance(user_addr))
            << " (pre-fork account)\n\n";

  analysis::EchoDetector detector;

  // --- the attack ---------------------------------------------------------
  std::cout << "1) user pays the merchant 10 ether on ETH with a LEGACY "
               "(no chain id) transaction\n";
  const Transaction legacy = make_transaction(user, 0, merchant_addr,
                                              ether(10), std::nullopt);
  mine(eth, {legacy});
  detector.observe(analysis::Chain::kEth, legacy.hash(), 1.0);
  std::cout << "   ETH: merchant has "
            << eth_str(eth.head_state().balance(merchant_addr)) << "\n";

  std::cout << "2) the merchant rebroadcasts the identical bytes on ETC\n";
  const auto replayed = Transaction::decode(legacy.encode());  // wire copy
  Block etc_block = mine(etc, {*replayed});
  const bool included = !etc_block.transactions.empty();
  std::cout << "   ETC accepts it: " << (included ? "YES" : "no")
            << " — merchant now also has "
            << eth_str(etc.head_state().balance(merchant_addr))
            << " on ETC\n";
  if (auto echo = detector.observe(analysis::Chain::kEtc, legacy.hash(), 2.0))
    std::cout << "   echo detector: tx first seen on ETH, echoed on ETC "
                 "(1 echo recorded)\n\n";

  // --- mitigation 1: EIP-155 ----------------------------------------------
  std::cout << "3) after EIP-155 activates on ETC, the user pays with a "
               "chain-id-61 transaction\n";
  // advance ETC past its EIP-155 block
  mine(etc, {});
  mine(etc, {});
  const Transaction protected_tx = make_transaction(
      user, 1, merchant_addr, ether(10), /*chain_id=*/61);
  Block etc_paid = mine(etc, {protected_tx});
  std::cout << "   included on ETC: "
            << (etc_paid.transactions.empty() ? "no" : "YES") << "\n";

  std::cout << "4) replaying the protected tx on ETH fails validation\n";
  TxError why{};
  const auto verdict =
      validate_transaction(eth.head_state(), protected_tx, eth.config(),
                           eth.height() + 1, 8'000'000, why);
  std::cout << "   ETH verdict: "
            << (verdict ? "accepted (BUG!)" : to_string(why)) << "\n\n";

  // --- mitigation 2: address splitting --------------------------------------
  std::cout << "5) defense in depth: the user splits funds to a fresh "
               "ETH-only address\n";
  const PrivateKey fresh = PrivateKey::from_seed(1001);
  const Transaction split = make_transaction(user, 1, derive_address(fresh),
                                             ether(50), std::nullopt);
  mine(eth, {split});
  // the same split tx *can* be replayed on ETC (it is legacy!) — but the
  // user wants that: it splits her ETC to the same fresh key's address,
  // which she also controls. From then on the histories diverge.
  const Transaction fresh_spend = make_transaction(
      fresh, 0, merchant_addr, ether(5), std::nullopt);
  mine(eth, {fresh_spend});
  std::cout << "   fresh-address tx on ETH: nonce 0 spent\n";

  TxError replay_why{};
  const auto replay_fresh =
      validate_transaction(etc.head_state(), fresh_spend, etc.config(),
                           etc.height() + 1, 8'000'000, replay_why);
  std::cout << "   replaying it on ETC: "
            << (replay_fresh ? "valid (balances diverged: would move "
                               "nothing the user still wants)"
                             : to_string(replay_why))
            << "\n\n";

  std::cout << "echo count for this session: " << detector.total_echoes()
            << " (into ETC: "
            << detector.echoes_into(analysis::Chain::kEtc) << ")\n";
  std::cout << "\nsummary: legacy txs replay across the fork; EIP-155 binds "
               "a tx to one chain;\nfresh addresses isolate post-fork "
               "funds. Exactly the timeline the paper documents.\n";
  return 0;
}
