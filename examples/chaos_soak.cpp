// Chaos soak: the DAO-fork partition forming on a hostile network.
//
// A ChaosRunner wraps the full fork scenario in deterministic adversity —
// 10% message loss, duplicated and reordered packets, a 60-sim-second
// network bisection (independent of the consensus fork), and node churn
// with some nodes never returning — then asks the paper's question: does
// each side of the fork still converge to a single chain? The resilient
// sync layer (request timeouts, exponential backoff, alternate-peer
// retries, peer scoring/banning, keepalive probes) is what makes the
// answer yes. Same seed, same run: every fault replays bit-identically.
//
// With --byzantine, a fraction of the (non-anchor, non-miner) nodes run
// hostile agents — invalid-block forgers, withholders, tx spammers,
// equivocators — and every honest node switches its ingress hardening on.
//
// With --cold-restarts, every node gets a WAL-backed block store on a
// simulated disk, and churned nodes come back with that probability as a
// COLD restart: wiped memory, recovered from the log, replayed, re-synced.
// --disk-faults makes each crash corrupt the disk (torn writes, tail
// truncation, bit rot at the given rate) before recovery runs.
//
// With --clients, that fraction of the nodes runs the parity (minority)
// client family carrying an injected validation quirk: inside the bug
// window (default [400, 700), override with --bug-window onset,patch) the
// quirky nodes dispute otherwise-valid blocks, fall behind on a competing
// view, and — once the hotfix ships at patch time — deep-reorg back onto
// the honest chain through full revalidation.
//
// With --eclipse, a sybil swarm (budget set by --sybil-budget, default 32)
// attacks one victim's peer discovery: identities ground into the victim's
// routing-table buckets, table poisoning, connection-slot flooding at
// restart, sybil-only lookup answers, and block withholding. The hardened
// dial policy, diversity caps, persisted anchors, and the isolation
// detector defend; --no-eclipse-defenses switches them off to watch the
// victim get starved.
//
//   ./build/examples/chaos_soak [seed] [--byzantine <fraction>]
//       [--cold-restarts <prob>] [--disk-faults <rate>]
//       [--clients <minority fraction>] [--bug-window <onset,patch>]
//       [--eclipse] [--sybil-budget <n>] [--no-eclipse-defenses]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/chaos.hpp"
#include "support/table.hpp"

using namespace forksim;
using namespace forksim::sim;

int main(int argc, char** argv) {
  std::cout << "== chaos soak ==\n";

  ChaosParams cp;
  cp.scenario.nodes_eth = 10;
  cp.scenario.nodes_etc = 5;
  cp.scenario.miners_per_side_eth = 3;
  cp.scenario.miners_per_side_etc = 2;
  cp.scenario.total_hashrate = 3e4;
  cp.scenario.etc_hashpower_fraction = 0.25;
  cp.scenario.fork_block = 10;
  cp.scenario.seed = 2016;
  cp.extra_loss = 0.10;
  cp.duplicate_prob = 0.02;
  cp.reorder_prob = 0.05;
  cp.cut_start = 300.0;
  cp.cut_duration = 60.0;
  cp.churn_fraction = 0.20;
  cp.mining_duration = 1500.0;
  cp.settle_deadline = 1200.0;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--byzantine") == 0 && i + 1 < argc) {
      cp.adversaries.fraction = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--cold-restarts") == 0 && i + 1 < argc) {
      cp.cold_restart_prob = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--disk-faults") == 0 && i + 1 < argc) {
      const double rate = std::strtod(argv[++i], nullptr);
      cp.storage_faults.torn_write_prob = rate;
      cp.storage_faults.tail_truncate_prob = rate;
      cp.storage_faults.bit_rot_prob = rate * 0.6;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      const double minority = std::strtod(argv[++i], nullptr);
      ClientMixParams& clients = cp.scenario.clients;
      clients.enabled = true;
      clients.mix = {{ClientFamily::kGeth, 1.0 - minority},
                     {ClientFamily::kParity, minority}};
      clients.buggy_family = ClientFamily::kParity;
      if (clients.patch_time < 0.0) {  // keep an explicit --bug-window
        clients.onset_time = 400.0;
        clients.patch_time = 700.0;
      }
    } else if (std::strcmp(argv[i], "--eclipse") == 0) {
      if (cp.eclipse.budget == 0) cp.eclipse.budget = 32;
      cp.eclipse.start = 100.0;
    } else if (std::strcmp(argv[i], "--sybil-budget") == 0 && i + 1 < argc) {
      cp.eclipse.budget = std::strtoull(argv[++i], nullptr, 10);
      cp.eclipse.start = 100.0;
    } else if (std::strcmp(argv[i], "--no-eclipse-defenses") == 0) {
      cp.eclipse.defenses = false;
    } else if (std::strcmp(argv[i], "--bug-window") == 0 && i + 1 < argc) {
      const std::string window(argv[++i]);
      const std::size_t comma = window.find(',');
      cp.scenario.clients.onset_time =
          std::strtod(window.substr(0, comma).c_str(), nullptr);
      if (comma != std::string::npos)
        cp.scenario.clients.patch_time =
            std::strtod(window.substr(comma + 1).c_str(), nullptr);
    } else {
      cp.scenario.seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  if (cp.scenario.clients.enabled) {
    // Per-family availability rides on the probe; pin its phase window to
    // the bug window (the bisection would otherwise win the derivation).
    cp.probe.enabled = true;
    cp.probe.failure_start = cp.scenario.clients.onset_time;
    cp.probe.failure_end = cp.scenario.clients.patch_time;
  }

  std::cout << cp.scenario.nodes_eth + cp.scenario.nodes_etc
            << " nodes, fork at block " << cp.scenario.fork_block
            << ", seed " << cp.scenario.seed << "\n"
            << "adversity: 10% loss, 2% duplication, 5% reordering, "
               "60 s bisection at t=300, 20% churn";
  if (cp.adversaries.fraction > 0.0)
    std::cout << ", " << fmt(cp.adversaries.fraction * 100.0, 0)
              << "% Byzantine peers";
  if (cp.cold_restart_prob > 0.0) {
    std::cout << ", " << fmt(cp.cold_restart_prob * 100.0, 0)
              << "% cold restarts";
    if (cp.storage_faults.any())
      std::cout << " on " << fmt(cp.storage_faults.torn_write_prob * 100.0, 0)
                << "%-faulty disks";
  }
  if (cp.eclipse.budget > 0)
    std::cout << ", a " << cp.eclipse.budget << "-sybil eclipse swarm from t="
              << fmt(cp.eclipse.start, 0) << " (defenses "
              << (cp.eclipse.defenses ? "on" : "OFF") << ")";
  if (cp.scenario.clients.enabled)
    std::cout << ", " << fmt(cp.scenario.clients.mix.back().fraction * 100.0, 0)
              << "% " << to_string(cp.scenario.clients.buggy_family)
              << " minority with a consensus bug in ["
              << fmt(cp.scenario.clients.onset_time, 0) << ", "
              << fmt(cp.scenario.clients.patch_time, 0) << ")";
  std::cout << "\n\n";

  ChaosRunner runner(cp);
  std::cout << "churn schedule: " << runner.churn().crash_count()
            << " crashes, " << runner.churn().restart_count()
            << " restarts planned\n";

  const ChaosReport r = runner.run();

  Table table({"metric", "value"});
  table.add_row({"converged", std::string(r.converged ? "yes" : "NO")});
  table.add_row({"settle time (s)", fmt(r.time_to_convergence, 0)});
  table.add_row({"ETH height / survivors",
                 std::to_string(r.height_eth) + " / " +
                     std::to_string(r.survivors_eth)});
  table.add_row({"ETC height / survivors",
                 std::to_string(r.height_etc) + " / " +
                     std::to_string(r.survivors_etc)});
  table.add_row({"crashes / restarts", std::to_string(r.crashes) + " / " +
                                           std::to_string(r.restarts)});
  table.add_row({"sync timeouts / retries",
                 std::to_string(r.sync_timeouts) + " / " +
                     std::to_string(r.sync_retries)});
  table.add_row({"dial attempts", std::to_string(r.dial_attempts)});
  table.add_row({"peers banned", std::to_string(r.peers_banned)});
  table.add_row({"messages sent", std::to_string(r.messages_sent)});
  table.add_row({"dropped: loss / cut / filter",
                 std::to_string(r.faults.dropped_by_loss) + " / " +
                     std::to_string(r.faults.dropped_by_cut) + " / " +
                     std::to_string(r.faults.dropped_by_filter)});
  table.add_row({"duplicated / reordered",
                 std::to_string(r.faults.duplicated) + " / " +
                     std::to_string(r.faults.reordered)});
  table.add_row({"fingerprint", r.fingerprint.hex().substr(0, 16)});
  table.print(std::cout);

  if (r.adversaries > 0) {
    std::cout << "\n-- Byzantine layer (" << r.adversaries
              << " hostile agents) --\n";
    Table at({"metric", "value"});
    at.add_row({"blocks forged", std::to_string(r.blocks_forged)});
    at.add_row(
        {"phantom announcements", std::to_string(r.phantom_announcements)});
    at.add_row({"txs spammed", std::to_string(r.txs_spammed)});
    at.add_row({"equivocations", std::to_string(r.equivocations)});
    at.add_row({"attackers banned",
                std::to_string(r.attackers_banned) + " / " +
                    std::to_string(r.adversaries)});
    at.add_row(
        {"honest-honest ban events", std::to_string(r.honest_ban_events)});
    at.add_row({"wasted executions", std::to_string(r.wasted_executions)});
    at.add_row({"invalid-cache hits", std::to_string(r.invalid_cache_hits)});
    at.add_row({"rate-limited messages", std::to_string(r.rate_limited)});
    at.add_row({"txpool evictions", std::to_string(r.txpool_evictions)});
    at.print(std::cout);
  }

  if (r.eclipse_victims > 0) {
    std::cout << "\n-- eclipse layer (" << r.eclipse_sybils << " sybils vs "
              << r.eclipse_victims << " victim"
              << (r.eclipse_victims == 1 ? "" : "s") << ") --\n";
    Table et({"metric", "value"});
    et.add_row({"table-poisoning floods", std::to_string(r.eclipse_table_floods)});
    et.add_row({"handshake floods", std::to_string(r.eclipse_status_floods)});
    et.add_row({"lookups answered sybil-only",
                std::to_string(r.eclipse_lookups_answered)});
    et.add_row({"block requests withheld",
                std::to_string(r.eclipse_withheld_requests)});
    for (std::size_t v = 0; v < r.isolation_seconds.size(); ++v)
      et.add_row({"victim " + std::to_string(v) + " isolated (s)",
                  fmt(r.isolation_seconds[v], 0)});
    et.add_row({"victims eclipsed at end",
                std::to_string(r.victims_eclipsed_at_end) + " / " +
                    std::to_string(r.eclipse_victims)});
    et.add_row({"eclipse suspicions raised",
                std::to_string(r.eclipse_suspicions)});
    et.add_row({"detector recoveries", std::to_string(r.eclipse_recoveries)});
    et.add_row(
        {"honest-honest ban events", std::to_string(r.honest_ban_events)});
    et.print(std::cout);
  }

  if (cp.scenario.clients.enabled) {
    std::cout << "\n-- client diversity (" << r.client_families.size()
              << " families) --\n";
    Table ct({"family", "nodes", "avail during", "diverged s"});
    for (const auto& f : r.client_families)
      ct.add_row({to_string(f.family), std::to_string(f.nodes),
                  fmt(f.availability.during_failure, 3),
                  fmt(f.divergence_seconds, 0)});
    ct.print(std::cout);
    Table qt({"metric", "value"});
    qt.add_row({"disputed blocks", std::to_string(r.disputed_blocks)});
    qt.add_row({"divergence events", std::to_string(r.divergence_events)});
    qt.add_row({"consensus patches", std::to_string(r.consensus_patches)});
    qt.add_row(
        {"honest-honest ban events", std::to_string(r.honest_ban_events)});
    qt.print(std::cout);
  }

  if (cp.cold_restart_prob > 0.0) {
    std::cout << "\n-- durability (" << r.cold_restarts
              << " cold restarts) --\n";
    Table dt({"metric", "value"});
    dt.add_row({"store appends", std::to_string(r.store_appends)});
    dt.add_row({"records scanned / corrupt",
                std::to_string(r.store_records_scanned) + " / " +
                    std::to_string(r.store_corrupt_records)});
    dt.add_row({"blocks replayed / rejected",
                std::to_string(r.store_blocks_replayed) + " / " +
                    std::to_string(r.store_replay_rejected)});
    dt.add_row({"recovery time (s)", fmt(r.recovery_seconds, 2)});
    dt.add_row({"disk: torn / truncated / bits flipped",
                std::to_string(r.disk_torn_writes) + " / " +
                    std::to_string(r.disk_tail_truncations) + " / " +
                    std::to_string(r.disk_bits_flipped)});
    dt.print(std::cout);
  }

  // Telemetry section: the registry snapshot that went into the
  // fingerprint, condensed to the layers the chaos stresses most.
  const obs::Snapshot& t = r.telemetry;
  std::cout << "\n-- telemetry (" << t.counters.size() << " counters, "
            << t.gauges.size() << " gauges, " << t.histograms.size()
            << " histograms) --\n";
  Table tt({"metric", "value"});
  const auto c = [&](const char* name) {
    return std::to_string(t.counter_value(name));
  };
  tt.add_row({"net.messages_delivered", c("net.messages_delivered")});
  tt.add_row({"net.dropped_detached", c("net.dropped_detached")});
  tt.add_row({"node.blocks_imported", c("node.blocks_imported")});
  tt.add_row({"node.orphan_evictions", c("node.orphan_evictions")});
  tt.add_row({"chain.import.unknown_parent", c("chain.import.unknown_parent")});
  tt.add_row({"chain.import.wrong_fork", c("chain.import.wrong_fork")});
  tt.add_row({"peers.wrong_fork_drops", c("peers.wrong_fork_drops")});
  tt.add_row({"peers.liveness_drops", c("peers.liveness_drops")});
  tt.add_row({"evm.ops", c("evm.ops")});
  tt.add_row({"trie.hash_recomputations", c("trie.hash_recomputations")});
  for (const auto& h : t.histograms) {
    if (h.name != "net.delay_seconds" && h.name != "chain.reorg_depth")
      continue;
    const double mean =
        h.count ? h.sum / static_cast<double>(h.count) : 0.0;
    tt.add_row({h.name + " (count/mean/max)",
                std::to_string(h.count) + " / " + fmt(mean, 3) + " / " +
                    fmt(h.max, 3)});
  }
  tt.add_row({"trace events", std::to_string(runner.tracer().size())});
  tt.add_row({"telemetry fingerprint", t.fingerprint().hex().substr(0, 16)});
  tt.print(std::cout);

  std::cout << "\n"
            << (r.converged
                    ? "both fork sides converged to a single head despite "
                      "the chaos —\nthe partition severs cleanly even on a "
                      "hostile network.\n"
                    : "the network failed to converge before the deadline; "
                      "the adversity won this round.\n")
            << "rerun with the same seed to watch the identical chaos "
               "replay (same fingerprint).\n";
  return r.converged ? 0 : 1;
}
